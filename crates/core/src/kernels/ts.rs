//! Ts — tensor–scalar operations (paper §2.2).
//!
//! One loop over the nonzero values; the output pattern equals the input
//! pattern, so pre-processing only clones the index arrays. The paper
//! implements Tsa and Tsm ("sufficient to support them all"); this module
//! supports all four operations, with division by a zero scalar reported as
//! an error rather than silently producing infinities.

use rayon::prelude::*;

use tenbench_obs as obs;

use crate::analysis;
use crate::coo::CooTensor;
use crate::error::{Result, TensorError};
use crate::hicoo::{HicooTensor, VbHicooTensor};
use crate::scalar::Scalar;
use crate::simd::{self, KernelBackend};

use super::EwOp;

/// Chunk size for the parallel value loops; large enough that the SIMD body
/// amortizes rayon's per-task overhead.
const CHUNK: usize = 1024;

fn check_scalar<S: Scalar>(op: EwOp, s: S) -> Result<()> {
    if op == EwOp::Div && s == S::ZERO {
        Err(TensorError::DivisionByZero)
    } else {
        Ok(())
    }
}

/// Charge one Ts invocation over `m` nonzeros (`analysis::ts_cost`).
fn charge(m: usize) {
    if obs::counters::counters_enabled() {
        let c = analysis::ts_cost(m as u64);
        obs::counters::FLOPS.add(c.flops);
        obs::counters::BYTES.add(c.bytes);
        obs::counters::KERNEL_CALLS.add(1);
    }
}

/// Tensor–scalar operation, parallel over nonzeros (COO-Ts-OMP).
pub fn ts<S: Scalar>(x: &CooTensor<S>, s: S, op: EwOp) -> Result<CooTensor<S>> {
    ts_backend(x, s, op, simd::current_backend())
}

/// [`ts`] with an explicit kernel backend.
pub fn ts_backend<S: Scalar>(
    x: &CooTensor<S>,
    s: S,
    op: EwOp,
    backend: KernelBackend,
) -> Result<CooTensor<S>> {
    check_scalar(op, s)?;
    let _span = obs::span!("ts.coo");
    charge(x.nnz());
    simd::note_dispatch(backend);
    let mut vals: Vec<S> = vec![S::ZERO; x.nnz()];
    vals.par_chunks_mut(CHUNK)
        .zip(x.vals().par_chunks(CHUNK))
        .for_each(|(o, a)| simd::ew_scalar_into(backend, op, a, s, o));
    Ok(CooTensor::from_parts_unchecked(
        x.shape().clone(),
        x.inds().to_vec(),
        vals,
        x.sort_state().clone(),
    ))
}

/// Sequential tensor–scalar baseline.
pub fn ts_seq<S: Scalar>(x: &CooTensor<S>, s: S, op: EwOp) -> Result<CooTensor<S>> {
    ts_seq_backend(x, s, op, simd::current_backend())
}

/// [`ts_seq`] with an explicit kernel backend.
pub fn ts_seq_backend<S: Scalar>(
    x: &CooTensor<S>,
    s: S,
    op: EwOp,
    backend: KernelBackend,
) -> Result<CooTensor<S>> {
    check_scalar(op, s)?;
    let _span = obs::span!("ts.seq");
    charge(x.nnz());
    simd::note_dispatch(backend);
    let mut vals: Vec<S> = vec![S::ZERO; x.nnz()];
    simd::ew_scalar_into(backend, op, x.vals(), s, &mut vals);
    Ok(CooTensor::from_parts_unchecked(
        x.shape().clone(),
        x.inds().to_vec(),
        vals,
        x.sort_state().clone(),
    ))
}

/// Tensor–scalar over HiCOO (HiCOO-Ts-OMP): identical value loop, output in
/// HiCOO with the input's block structure.
pub fn ts_hicoo<S: Scalar>(x: &HicooTensor<S>, s: S, op: EwOp) -> Result<HicooTensor<S>> {
    ts_hicoo_backend(x, s, op, simd::current_backend())
}

/// [`ts_hicoo`] with an explicit kernel backend.
pub fn ts_hicoo_backend<S: Scalar>(
    x: &HicooTensor<S>,
    s: S,
    op: EwOp,
    backend: KernelBackend,
) -> Result<HicooTensor<S>> {
    check_scalar(op, s)?;
    let _span = obs::span!("ts.hicoo");
    charge(x.nnz());
    simd::note_dispatch(backend);
    let mut out = x.clone();
    out.vals_mut()
        .par_chunks_mut(CHUNK)
        .for_each(|a| simd::ew_scalar_assign(backend, op, a, s));
    Ok(out)
}

/// Ts over a vb-HiCOO tensor: streams the padded value array (aligned,
/// full-lane chunks) and re-zeroes the padding lanes afterwards (Add/Sub/Div
/// would otherwise leave them nonzero or NaN).
pub fn ts_vb<S: Scalar>(x: &VbHicooTensor<S>, s: S, op: EwOp) -> Result<VbHicooTensor<S>> {
    ts_vb_backend(x, s, op, simd::current_backend())
}

/// [`ts_vb`] with an explicit kernel backend.
pub fn ts_vb_backend<S: Scalar>(
    x: &VbHicooTensor<S>,
    s: S,
    op: EwOp,
    backend: KernelBackend,
) -> Result<VbHicooTensor<S>> {
    check_scalar(op, s)?;
    let _span = obs::span!("ts.vb");
    charge(x.nnz());
    simd::note_dispatch(backend);
    let mut out = x.clone();
    out.padded_vals_mut()
        .par_chunks_mut(CHUNK)
        .for_each(|a| simd::ew_scalar_assign(backend, op, a, s));
    out.rezero_padding();
    Ok(out)
}

/// In-place variant reusing the input's allocation (the form tensor methods
/// use when the operand is a scratch tensor).
pub fn ts_in_place<S: Scalar>(x: &mut CooTensor<S>, s: S, op: EwOp) -> Result<()> {
    ts_in_place_backend(x, s, op, simd::current_backend())
}

/// [`ts_in_place`] with an explicit kernel backend.
pub fn ts_in_place_backend<S: Scalar>(
    x: &mut CooTensor<S>,
    s: S,
    op: EwOp,
    backend: KernelBackend,
) -> Result<()> {
    check_scalar(op, s)?;
    let _span = obs::span!("ts.in_place");
    charge(x.nnz());
    simd::note_dispatch(backend);
    x.vals_mut()
        .par_chunks_mut(CHUNK)
        .for_each(|a| simd::ew_scalar_assign(backend, op, a, s));
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::shape::Shape;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4, 4]),
            vec![
                (vec![0, 0, 0], 2.0),
                (vec![1, 2, 3], 4.0),
                (vec![3, 3, 3], -6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_ops_apply_elementwise() {
        let x = sample();
        assert_eq!(ts(&x, 2.0, EwOp::Add).unwrap().vals(), &[4.0, 6.0, -4.0]);
        assert_eq!(ts(&x, 2.0, EwOp::Sub).unwrap().vals(), &[0.0, 2.0, -8.0]);
        assert_eq!(ts(&x, 2.0, EwOp::Mul).unwrap().vals(), &[4.0, 8.0, -12.0]);
        assert_eq!(ts(&x, 2.0, EwOp::Div).unwrap().vals(), &[1.0, 2.0, -3.0]);
    }

    #[test]
    fn seq_matches_parallel() {
        let x = sample();
        for op in [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div] {
            assert_eq!(
                ts(&x, 3.5, op).unwrap().vals(),
                ts_seq(&x, 3.5, op).unwrap().vals()
            );
        }
    }

    #[test]
    fn pattern_and_sort_state_preserved() {
        let x = sample();
        let y = ts(&x, 1.0, EwOp::Mul).unwrap();
        assert!(x.same_pattern(&y));
        assert_eq!(x.sort_state(), y.sort_state());
    }

    #[test]
    fn division_by_zero_scalar_is_an_error() {
        let x = sample();
        assert_eq!(ts(&x, 0.0, EwOp::Div), Err(TensorError::DivisionByZero));
    }

    #[test]
    fn hicoo_matches_coo() {
        let x = sample();
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        let hy = ts_hicoo(&h, 5.0, EwOp::Mul).unwrap();
        let y = ts(&x, 5.0, EwOp::Mul).unwrap();
        assert_eq!(hy.to_map(), y.to_map());
        assert!(hy.same_pattern(&h));
    }

    #[test]
    fn backends_are_bitwise_identical() {
        use crate::simd::KernelBackend::{Scalar, Simd};
        let entries: Vec<(Vec<u32>, f32)> = (0..333u32)
            .map(|i| {
                (
                    vec![i % 4, (i / 4) % 4, i / 16],
                    ((i * 29 % 17) as f32) - 8.0,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![4, 4, 21]), entries).unwrap();
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        for op in [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div] {
            let s = 2.75f32;
            let zs = ts_backend(&x, s, op, Scalar).unwrap();
            let zv = ts_backend(&x, s, op, Simd).unwrap();
            assert_eq!(
                zs.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                zv.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{op:?} parallel"
            );
            assert_eq!(zs.vals(), ts_seq_backend(&x, s, op, Simd).unwrap().vals());
            let hs = ts_hicoo_backend(&h, s, op, Scalar).unwrap();
            let hv = ts_hicoo_backend(&h, s, op, Simd).unwrap();
            assert_eq!(hs.vals(), hv.vals(), "{op:?} hicoo");
            let mut xi = x.clone();
            ts_in_place_backend(&mut xi, s, op, Simd).unwrap();
            assert_eq!(zs.vals(), xi.vals(), "{op:?} in-place");
        }
    }

    #[test]
    fn vb_matches_hicoo_and_keeps_padding_clean() {
        let entries: Vec<(Vec<u32>, f32)> = (0..333u32)
            .map(|i| {
                (
                    vec![i % 4, (i / 4) % 4, i / 16],
                    ((i * 29 % 17) as f32) - 8.0,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![4, 4, 21]), entries).unwrap();
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        let v = VbHicooTensor::from_hicoo(&h);
        for op in [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div] {
            for backend in [
                crate::simd::KernelBackend::Scalar,
                crate::simd::KernelBackend::Simd,
            ] {
                let hy = ts_hicoo_backend(&h, 2.75, op, backend).unwrap();
                let vy = ts_vb_backend(&v, 2.75, op, backend).unwrap();
                assert!(vy.validate().is_ok(), "{op:?} {backend:?} padding");
                assert_eq!(
                    hy.vals().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                    vy.to_hicoo()
                        .vals()
                        .iter()
                        .map(|s| s.to_bits())
                        .collect::<Vec<_>>(),
                    "{op:?} {backend:?}"
                );
            }
        }
    }

    #[test]
    fn in_place_updates_values() {
        let mut x = sample();
        ts_in_place(&mut x, 10.0, EwOp::Add).unwrap();
        assert_eq!(x.vals(), &[12.0, 14.0, 4.0]);
    }
}
