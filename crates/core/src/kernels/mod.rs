//! The five benchmark kernels (paper §2) with sequential and rayon-parallel
//! CPU implementations over COO and HiCOO (paper §3.2, §3.4).
//!
//! Conventions shared by all kernels:
//!
//! * Pre-processing (sorting, fiber partitioning, output allocation) is
//!   separated from value computation wherever the paper separates it, so
//!   the harness can time the kernel body alone ("we use more preprocessing
//!   to trade for less kernel computation").
//! * Parallel decomposition follows the paper exactly: Tew/Ts over nonzeros,
//!   Ttv/Ttm over fibers (race-free by the sparse-dense property), COO
//!   Mttkrp over nonzeros with atomic output updates, HiCOO Mttkrp over
//!   blocks.

pub mod contract;
pub mod mttkrp;
pub mod tew;
pub mod ts;
pub mod ttm;
pub mod ttv;

/// Element-wise operation selector shared by Tew and Ts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwOp {
    /// Addition (`Tew` in the paper's experiments represents the family).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (`Ts`'s representative operation).
    Mul,
    /// Division.
    Div,
}

impl EwOp {
    /// Apply the operation to a pair of values.
    #[inline]
    pub fn apply<S: crate::scalar::Scalar>(self, a: S, b: S) -> S {
        match self {
            EwOp::Add => a + b,
            EwOp::Sub => a - b,
            EwOp::Mul => a * b,
            EwOp::Div => a / b,
        }
    }

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            EwOp::Add => "add",
            EwOp::Sub => "sub",
            EwOp::Mul => "mul",
            EwOp::Div => "div",
        }
    }
}

/// The five kernels of the benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Tensor element-wise (two tensor operands).
    Tew,
    /// Tensor–scalar.
    Ts,
    /// Tensor-times-vector.
    Ttv,
    /// Tensor-times-matrix.
    Ttm,
    /// Matricized tensor times Khatri–Rao product.
    Mttkrp,
}

impl Kernel {
    /// All kernels in the paper's presentation order.
    pub const ALL: [Kernel; 5] = [
        Kernel::Tew,
        Kernel::Ts,
        Kernel::Ttv,
        Kernel::Ttm,
        Kernel::Mttkrp,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Tew => "Tew",
            Kernel::Ts => "Ts",
            Kernel::Ttv => "Ttv",
            Kernel::Ttm => "Ttm",
            Kernel::Mttkrp => "Mttkrp",
        }
    }

    /// Floating-point work (Table 1 `#Flops`) for an order-`n` tensor with
    /// `m` nonzeros and rank `r` (ignored by the rank-free kernels).
    ///
    /// Table 1 lists the third-order counts (Tew/Ts: `M`, Ttv: `2M`,
    /// Ttm: `2MR`, Mttkrp: `3MR`); the Mttkrp count generalizes to `N*M*R`
    /// ((N-1) multiplies plus one add per rank element per nonzero).
    pub fn flops(self, order: usize, m: u64, r: u64) -> u64 {
        match self {
            Kernel::Tew | Kernel::Ts => m,
            Kernel::Ttv => 2 * m,
            Kernel::Ttm => 2 * m * r,
            Kernel::Mttkrp => order as u64 * m * r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewop_applies() {
        assert_eq!(EwOp::Add.apply(2.0f32, 3.0), 5.0);
        assert_eq!(EwOp::Sub.apply(2.0f32, 3.0), -1.0);
        assert_eq!(EwOp::Mul.apply(2.0f32, 3.0), 6.0);
        assert_eq!(EwOp::Div.apply(3.0f32, 2.0), 1.5);
    }

    #[test]
    fn flops_match_table1_third_order() {
        let (m, r) = (100, 16);
        assert_eq!(Kernel::Tew.flops(3, m, r), 100);
        assert_eq!(Kernel::Ts.flops(3, m, r), 100);
        assert_eq!(Kernel::Ttv.flops(3, m, r), 200);
        assert_eq!(Kernel::Ttm.flops(3, m, r), 2 * 100 * 16);
        assert_eq!(Kernel::Mttkrp.flops(3, m, r), 3 * 100 * 16);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["Tew", "Ts", "Ttv", "Ttm", "Mttkrp"]);
    }
}
