//! Mttkrp — matricized tensor times Khatri–Rao product (paper §2.5).
//!
//! For mode `n`, each nonzero `x_{i_1..i_N}` scales the element-wise product
//! of the other modes' factor rows and accumulates into row `i_n` of the
//! output. The Khatri–Rao product is never materialized ("these operations
//! tend to be not implemented directly but rather integrated into tensor
//! operations").
//!
//! The paper's reference COO-Mttkrp-OMP parallelizes over nonzeros and
//! protects the output with `omp atomic`; that is [`MttkrpStrategy::Atomic`]
//! here. Two lock-avoiding alternatives are provided for the ablation study
//! only (A2 in DESIGN.md) — the paper deliberately keeps them out of the
//! reference. HiCOO-Mttkrp-OMP (Algorithm 2) parallelizes over blocks and
//! reuses per-block factor sub-matrices.

use rayon::prelude::*;

use crate::atomic::AtomicScalar;
use crate::coo::CooTensor;
use crate::dense::DenseMatrix;
use crate::error::{Result, TensorError};
use crate::hicoo::HicooTensor;
use crate::scalar::Scalar;
use crate::shape::Shape;

/// Parallelization strategy for COO Mttkrp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MttkrpStrategy {
    /// Single-threaded baseline.
    Seq,
    /// Nonzero-parallel with atomic output updates — the paper's reference
    /// (`omp atomic` analogue).
    Atomic,
    /// Nonzero-parallel with one private output copy per worker, reduced at
    /// the end. Lock-free but needs `threads x I_n x R` scratch memory.
    Privatized,
    /// Nonzero-parallel with one mutex per output row.
    RowLocked,
}

fn check_factors<S: Scalar>(
    shape: &Shape,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<usize> {
    shape.check_mode(mode)?;
    if factors.len() != shape.order() {
        return Err(TensorError::FactorMismatch(format!(
            "{} factor matrices for order-{} tensor",
            factors.len(),
            shape.order()
        )));
    }
    let r = factors[0].cols();
    if r == 0 {
        return Err(TensorError::FactorMismatch("rank must be >= 1".into()));
    }
    for (m, f) in factors.iter().enumerate() {
        if f.cols() != r {
            return Err(TensorError::FactorMismatch(format!(
                "factor {m} has {} columns, expected {r}",
                f.cols()
            )));
        }
        if f.rows() != shape.dim(m) as usize {
            return Err(TensorError::FactorMismatch(format!(
                "factor {m} has {} rows, expected {}",
                f.rows(),
                shape.dim(m)
            )));
        }
    }
    Ok(r)
}

/// Accumulate the contribution of nonzero `z` into `row` (length `R`).
#[inline]
fn scale_rows<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    z: usize,
    scratch: &mut [S],
) {
    let val = x.vals()[z];
    scratch.fill(val);
    for (m, f) in factors.iter().enumerate() {
        if m == mode {
            continue;
        }
        let row = f.row(x.mode_inds(m)[z] as usize);
        for (s, &c) in scratch.iter_mut().zip(row) {
            *s *= c;
        }
    }
}

/// Sequential COO Mttkrp.
pub fn mttkrp_seq<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let mut out = DenseMatrix::zeros(x.shape().dim(mode) as usize, r);
    let mut scratch = vec![S::ZERO; r];
    let rows = x.mode_inds(mode);
    for z in 0..x.nnz() {
        scale_rows(x, factors, mode, z, &mut scratch);
        let dst = out.row_mut(rows[z] as usize);
        for (d, &s) in dst.iter_mut().zip(&scratch) {
            *d += s;
        }
    }
    Ok(out)
}

/// Nonzero-parallel COO Mttkrp with atomic output updates (the paper's
/// COO-Mttkrp-OMP).
pub fn mttkrp_atomic<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let mut out = DenseMatrix::zeros(x.shape().dim(mode) as usize, r);
    {
        let cells = S::as_atomic_slice(out.data_mut());
        let rows = x.mode_inds(mode);
        let m = x.nnz();
        let grain = 1024usize;
        (0..m.div_ceil(grain)).into_par_iter().for_each(|c| {
            let mut scratch = vec![S::ZERO; r];
            let end = ((c + 1) * grain).min(m);
            for z in c * grain..end {
                scale_rows(x, factors, mode, z, &mut scratch);
                let base = rows[z] as usize * r;
                for (k, &s) in scratch.iter().enumerate() {
                    cells[base + k].fetch_add(s);
                }
            }
        });
    }
    Ok(out)
}

/// Nonzero-parallel COO Mttkrp with per-worker private outputs (ablation).
pub fn mttkrp_privatized<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let rows_n = x.shape().dim(mode) as usize;
    let rows = x.mode_inds(mode);
    let m = x.nnz();
    let grain = 4096usize;
    let partials: Vec<DenseMatrix<S>> = (0..m.div_ceil(grain))
        .into_par_iter()
        .fold(
            || DenseMatrix::zeros(rows_n, r),
            |mut local, c| {
                let mut scratch = vec![S::ZERO; r];
                let end = ((c + 1) * grain).min(m);
                for z in c * grain..end {
                    scale_rows(x, factors, mode, z, &mut scratch);
                    let dst = local.row_mut(rows[z] as usize);
                    for (d, &s) in dst.iter_mut().zip(&scratch) {
                        *d += s;
                    }
                }
                local
            },
        )
        .collect();
    let mut out = DenseMatrix::zeros(rows_n, r);
    for p in partials {
        for (d, &s) in out.data_mut().iter_mut().zip(p.data()) {
            *d += s;
        }
    }
    Ok(out)
}

/// Nonzero-parallel COO Mttkrp with one mutex per output row (ablation).
pub fn mttkrp_row_locked<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let rows_n = x.shape().dim(mode) as usize;
    let locked: Vec<parking_lot::Mutex<Vec<S>>> = (0..rows_n)
        .map(|_| parking_lot::Mutex::new(vec![S::ZERO; r]))
        .collect();
    let rows = x.mode_inds(mode);
    let m = x.nnz();
    let grain = 1024usize;
    (0..m.div_ceil(grain)).into_par_iter().for_each(|c| {
        let mut scratch = vec![S::ZERO; r];
        let end = ((c + 1) * grain).min(m);
        for z in c * grain..end {
            scale_rows(x, factors, mode, z, &mut scratch);
            let mut row = locked[rows[z] as usize].lock();
            for (d, &s) in row.iter_mut().zip(&scratch) {
                *d += s;
            }
        }
    });
    let mut out = DenseMatrix::zeros(rows_n, r);
    for (i, cell) in locked.into_iter().enumerate() {
        out.row_mut(i).copy_from_slice(&cell.into_inner());
    }
    Ok(out)
}

/// COO Mttkrp with an explicit strategy.
pub fn mttkrp_with<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    strategy: MttkrpStrategy,
) -> Result<DenseMatrix<S>> {
    match strategy {
        MttkrpStrategy::Seq => mttkrp_seq(x, factors, mode),
        MttkrpStrategy::Atomic => mttkrp_atomic(x, factors, mode),
        MttkrpStrategy::Privatized => mttkrp_privatized(x, factors, mode),
        MttkrpStrategy::RowLocked => mttkrp_row_locked(x, factors, mode),
    }
}

/// COO Mttkrp with the paper's reference strategy (atomic).
///
/// # Examples
/// ```
/// use tenbench_core::prelude::*;
/// use tenbench_core::kernels::mttkrp::mttkrp;
///
/// let x = CooTensor::<f32>::from_entries(
///     Shape::new(vec![2, 2, 2]),
///     vec![(vec![0, 0, 0], 1.0), (vec![1, 1, 1], 2.0)],
/// )?;
/// // All-ones rank-3 factors: each output row sums its nonzero values.
/// let f: Vec<DenseMatrix<f32>> = (0..3).map(|_| DenseMatrix::constant(2, 3, 1.0)).collect();
/// let frefs: Vec<&DenseMatrix<f32>> = f.iter().collect();
/// let out = mttkrp(&x, &frefs, 0)?;
/// assert_eq!(out.row(0), &[1.0, 1.0, 1.0]);
/// assert_eq!(out.row(1), &[2.0, 2.0, 2.0]);
/// # Ok::<(), TensorError>(())
/// ```
pub fn mttkrp<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_atomic(x, factors, mode)
}

/// HiCOO-Mttkrp-OMP (Algorithm 2): block-parallel, with per-block base
/// offsets into the factor matrices so only 8-bit element indices are
/// touched in the inner loop. Blocks sharing an output row block still race,
/// so updates remain atomic — the paper keeps advanced lock-avoiding
/// scheduling out of the reference implementation.
pub fn mttkrp_hicoo<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(h.shape(), factors, mode)?;
    let mut out = DenseMatrix::zeros(h.shape().dim(mode) as usize, r);
    let bits = h.block_bits();
    {
        let cells = S::as_atomic_slice(out.data_mut());
        let order = h.order();
        (0..h.num_blocks()).into_par_iter().for_each(|b| {
            let mut scratch = vec![S::ZERO; r];
            // Base row offsets of this block in every factor matrix.
            let base: Vec<usize> = (0..order)
                .map(|m| (h.block_ind(b, m) as usize) << bits)
                .collect();
            for z in h.block_range(b) {
                let val = h.vals()[z];
                scratch.fill(val);
                for (m, f) in factors.iter().enumerate() {
                    if m == mode {
                        continue;
                    }
                    let row = f.row(base[m] + h.einds()[m][z] as usize);
                    for (s, &c) in scratch.iter_mut().zip(row) {
                        *s *= c;
                    }
                }
                let out_row = base[mode] + h.einds()[mode][z] as usize;
                for (k, &s) in scratch.iter().enumerate() {
                    cells[out_row * r + k].fetch_add(s);
                }
            }
        });
    }
    Ok(out)
}

/// Sequential HiCOO Mttkrp baseline.
pub fn mttkrp_hicoo_seq<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(h.shape(), factors, mode)?;
    let mut out = DenseMatrix::zeros(h.shape().dim(mode) as usize, r);
    let bits = h.block_bits();
    let order = h.order();
    let mut scratch = vec![S::ZERO; r];
    for b in 0..h.num_blocks() {
        let base: Vec<usize> = (0..order)
            .map(|m| (h.block_ind(b, m) as usize) << bits)
            .collect();
        for z in h.block_range(b) {
            let val = h.vals()[z];
            scratch.fill(val);
            for (m, f) in factors.iter().enumerate() {
                if m == mode {
                    continue;
                }
                let row = f.row(base[m] + h.einds()[m][z] as usize);
                for (s, &c) in scratch.iter_mut().zip(row) {
                    *s *= c;
                }
            }
            let dst = out.row_mut(base[mode] + h.einds()[mode][z] as usize);
            for (d, &s) in dst.iter_mut().zip(&scratch) {
                *d += s;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::scalar::approx_eq;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![1, 2, 1], 3.0),
                (vec![2, 3, 0], 4.0),
                (vec![2, 3, 4], 5.0),
                (vec![0, 1, 1], -2.5),
            ],
        )
        .unwrap()
    }

    fn factors(shape: &Shape, r: usize) -> Vec<DenseMatrix<f32>> {
        (0..shape.order())
            .map(|m| {
                DenseMatrix::from_fn(shape.dim(m) as usize, r, |i, j| {
                    ((i * 31 + j * 7 + m * 13) % 5) as f32 - 2.0
                })
            })
            .collect()
    }

    fn refs(f: &[DenseMatrix<f32>]) -> Vec<&DenseMatrix<f32>> {
        f.iter().collect()
    }

    /// Dense reference: out[i_n][r] = sum over nnz of val * prod factors.
    fn reference(
        x: &CooTensor<f32>,
        factors: &[&DenseMatrix<f32>],
        mode: usize,
    ) -> DenseMatrix<f64> {
        let r = factors[0].cols();
        let mut out = DenseMatrix::<f64>::zeros(x.shape().dim(mode) as usize, r);
        for (c, v) in x.iter_entries() {
            for k in 0..r {
                let mut acc = v as f64;
                for (m, f) in factors.iter().enumerate() {
                    if m != mode {
                        acc *= f[(c[m] as usize, k)] as f64;
                    }
                }
                out[(c[mode] as usize, k)] += acc;
            }
        }
        out
    }

    fn assert_matches(a: &DenseMatrix<f32>, b: &DenseMatrix<f64>) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(
                approx_eq(*x as f64, *y, 1e-5),
                "mismatch: {x} vs {y}"
            );
        }
    }

    #[test]
    fn all_strategies_match_reference_every_mode() {
        let x = sample();
        let f = factors(x.shape(), 4);
        for mode in 0..3 {
            let expect = reference(&x, &refs(&f), mode);
            for strat in [
                MttkrpStrategy::Seq,
                MttkrpStrategy::Atomic,
                MttkrpStrategy::Privatized,
                MttkrpStrategy::RowLocked,
            ] {
                let got = mttkrp_with(&x, &refs(&f), mode, strat).unwrap();
                assert_matches(&got, &expect);
            }
        }
    }

    #[test]
    fn hicoo_matches_reference_every_mode() {
        let x = sample();
        let f = factors(x.shape(), 4);
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        for mode in 0..3 {
            let expect = reference(&x, &refs(&f), mode);
            let got = mttkrp_hicoo(&h, &refs(&f), mode).unwrap();
            assert_matches(&got, &expect);
            let got_seq = mttkrp_hicoo_seq(&h, &refs(&f), mode).unwrap();
            assert_matches(&got_seq, &expect);
        }
    }

    #[test]
    fn factor_validation() {
        let x = sample();
        let f = factors(x.shape(), 4);
        // Wrong count.
        assert!(matches!(
            mttkrp(&x, &refs(&f)[..2], 0),
            Err(TensorError::FactorMismatch(_))
        ));
        // Wrong rank on one factor.
        let mut bad = factors(x.shape(), 4);
        bad[1] = DenseMatrix::zeros(4, 3);
        assert!(mttkrp(&x, &refs(&bad), 0).is_err());
        // Wrong row count.
        let mut bad2 = factors(x.shape(), 4);
        bad2[2] = DenseMatrix::zeros(6, 4);
        assert!(mttkrp(&x, &refs(&bad2), 0).is_err());
        // Zero rank.
        let zero = vec![
            DenseMatrix::<f32>::zeros(3, 0),
            DenseMatrix::zeros(4, 0),
            DenseMatrix::zeros(5, 0),
        ];
        assert!(mttkrp(&x, &refs(&zero), 0).is_err());
    }

    #[test]
    fn fourth_order_mttkrp() {
        let x = CooTensor::from_entries(
            Shape::new(vec![2, 3, 4, 5]),
            vec![
                (vec![0, 1, 2, 3], 2.0f32),
                (vec![1, 2, 0, 0], 4.0),
                (vec![0, 0, 0, 0], 1.0),
            ],
        )
        .unwrap();
        let f = factors(x.shape(), 3);
        for mode in 0..4 {
            let expect = reference(&x, &refs(&f), mode);
            let got = mttkrp(&x, &refs(&f), mode).unwrap();
            assert_matches(&got, &expect);
        }
    }

    #[test]
    fn contended_rows_accumulate_correctly() {
        // Many nonzeros mapping to the same output row stress the atomics.
        let entries: Vec<(Vec<u32>, f32)> = (0..5000)
            .map(|i| (vec![0, i % 50, (i * 7) % 40], 1.0))
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![1, 50, 40]), entries).unwrap();
        let f = factors(x.shape(), 8);
        let expect = reference(&x, &refs(&f), 0);
        let got = mttkrp_atomic(&x, &refs(&f), 0).unwrap();
        for (a, b) in got.data().iter().zip(expect.data()) {
            assert!(approx_eq(*a as f64, *b, 1e-3), "{a} vs {b}");
        }
    }
}
