//! Mttkrp — matricized tensor times Khatri–Rao product (paper §2.5).
//!
//! For mode `n`, each nonzero `x_{i_1..i_N}` scales the element-wise product
//! of the other modes' factor rows and accumulates into row `i_n` of the
//! output. The Khatri–Rao product is never materialized ("these operations
//! tend to be not implemented directly but rather integrated into tensor
//! operations").
//!
//! The paper's reference COO-Mttkrp-OMP parallelizes over nonzeros and
//! protects the output with `omp atomic`; that is [`MttkrpStrategy::Atomic`]
//! here. Lock-avoiding alternatives are provided for the ablation study
//! (A2 in DESIGN.md) — the paper deliberately keeps them out of the
//! reference. HiCOO-Mttkrp-OMP (Algorithm 2) parallelizes over blocks and
//! reuses per-block factor sub-matrices.
//!
//! [`MttkrpStrategy::Scheduled`] goes one step further than the paper: a
//! precomputed output partition (see [`crate::sched`]) hands every parallel
//! task a disjoint `&mut` stripe of the output, so the inner loop is plain
//! scalar code — no atomics, no locks, and a fixed accumulation order that
//! makes results bitwise-identical across runs and thread counts.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

use tenbench_obs as obs;

use crate::align::AlignedVec;
use crate::analysis;
use crate::atomic::AtomicScalar;
use crate::coo::CooTensor;
use crate::dense::DenseMatrix;
use crate::error::{Result, TensorError};
use crate::hicoo::{HicooTensor, VbHicooTensor};
use crate::par::ScratchArena;
use crate::scalar::Scalar;
use crate::sched::{ModeSchedule, RowSchedule};
use crate::shape::Shape;
use crate::simd::{self, KernelBackend};

/// Charge one COO Mttkrp invocation to the obs counters using the paper's
/// Table 1 cost model (`analysis::mttkrp_coo_cost`).
fn charge_coo<S: Scalar>(x: &CooTensor<S>, r: usize) {
    if obs::counters::counters_enabled() {
        let c = analysis::mttkrp_coo_cost(x.order(), x.nnz() as u64, r as u64);
        obs::counters::FLOPS.add(c.flops);
        obs::counters::BYTES.add(c.bytes);
        obs::counters::KERNEL_CALLS.add(1);
    }
}

/// Charge one HiCOO Mttkrp invocation (`analysis::mttkrp_hicoo_cost`).
fn charge_hicoo<S: Scalar>(h: &HicooTensor<S>, r: usize) {
    if obs::counters::counters_enabled() {
        let c = analysis::mttkrp_hicoo_cost(
            h.order(),
            h.nnz() as u64,
            r as u64,
            h.num_blocks() as u64,
            1u64 << h.block_bits(),
        );
        obs::counters::FLOPS.add(c.flops);
        obs::counters::BYTES.add(c.bytes);
        obs::counters::KERNEL_CALLS.add(1);
    }
}

/// Charge one vb-HiCOO Mttkrp invocation (same cost model as HiCOO — the
/// padding only moves storage, not work).
fn charge_vb<S: Scalar>(x: &VbHicooTensor<S>, r: usize) {
    if obs::counters::counters_enabled() {
        let c = analysis::mttkrp_hicoo_cost(
            x.order(),
            x.nnz() as u64,
            r as u64,
            x.num_blocks() as u64,
            1u64 << x.block_bits(),
        );
        obs::counters::FLOPS.add(c.flops);
        obs::counters::BYTES.add(c.bytes);
        obs::counters::KERNEL_CALLS.add(1);
    }
}

/// Parallelization strategy for COO Mttkrp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MttkrpStrategy {
    /// Single-threaded baseline.
    Seq,
    /// Nonzero-parallel with atomic output updates — the paper's reference
    /// (`omp atomic` analogue).
    Atomic,
    /// Nonzero-parallel with one private output copy per worker, reduced at
    /// the end. Lock-free but needs `threads x I_n x R` scratch memory.
    Privatized,
    /// Nonzero-parallel with one mutex per output row.
    RowLocked,
    /// Output-partitioned: nonzeros are pre-grouped by output row (cached
    /// [`crate::sched::RowSchedule`]) so tasks own disjoint output stripes.
    /// Atomic-free, lock-free, and bitwise-deterministic.
    Scheduled,
}

/// Split `data` (a row-major matrix with `r` columns) into one `&mut` slice
/// per row range. Ranges must be ascending and non-overlapping; rows in the
/// gaps between ranges are left untouched. Returns `(first_row, slice)`
/// pairs.
fn split_row_ranges<S>(
    mut data: &mut [S],
    r: usize,
    ranges: impl Iterator<Item = Range<usize>>,
) -> Vec<(usize, &mut [S])> {
    let mut tasks = Vec::new();
    let mut row = 0usize;
    for range in ranges {
        debug_assert!(range.start >= row && range.end >= range.start);
        let rest = std::mem::take(&mut data);
        let rest = &mut rest[(range.start - row) * r..];
        let (task, rest) = rest.split_at_mut((range.end - range.start) * r);
        data = rest;
        row = range.end;
        tasks.push((range.start, task));
    }
    tasks
}

fn check_factors<S: Scalar>(
    shape: &Shape,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<usize> {
    shape.check_mode(mode)?;
    if factors.len() != shape.order() {
        return Err(TensorError::FactorMismatch(format!(
            "{} factor matrices for order-{} tensor",
            factors.len(),
            shape.order()
        )));
    }
    let r = factors[0].cols();
    if r == 0 {
        return Err(TensorError::FactorMismatch("rank must be >= 1".into()));
    }
    for (m, f) in factors.iter().enumerate() {
        if f.cols() != r {
            return Err(TensorError::FactorMismatch(format!(
                "factor {m} has {} columns, expected {r}",
                f.cols()
            )));
        }
        if f.rows() != shape.dim(m) as usize {
            return Err(TensorError::FactorMismatch(format!(
                "factor {m} has {} rows, expected {}",
                f.rows(),
                shape.dim(m)
            )));
        }
    }
    Ok(r)
}

/// Collect the non-mode factor rows of COO nonzero `z` into `rows` (reused
/// across nonzeros to avoid reallocation).
///
/// The rank loop is the SIMD backend's target: the gathered rows feed one
/// fused [`simd::accum_rows`] / [`simd::product_rows`] call per nonzero —
/// `#[target_feature]` code cannot inline into scalar callers, so splitting
/// the body into fill/mul/add primitives costs 3-4 dispatched calls of ~2
/// vectors each and loses to the auto-vectorized scalar loop. The fused
/// body keeps the per-element product order of the scratch flow, so both
/// backends stay bitwise-identical.
#[inline]
fn gather_rows<'a, S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&'a DenseMatrix<S>],
    mode: usize,
    z: usize,
    rows: &mut Vec<&'a [S]>,
) {
    rows.clear();
    for (m, f) in factors.iter().enumerate() {
        if m != mode {
            rows.push(f.row(x.mode_inds(m)[z] as usize));
        }
    }
}

/// The two non-`mode` mode indices of an order-3 tensor, ascending (the
/// same order the scratch flow multiplies factors in).
#[inline]
fn non_mode_pair(mode: usize) -> (usize, usize) {
    match mode {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

/// Collect the non-mode factor rows of blocked nonzero `z` (HiCOO / vb-
/// HiCOO: row index = block base + element offset) into `rows`.
#[inline]
fn gather_block_rows<'a, S: Scalar>(
    einds: &[Vec<u8>],
    base: &[usize],
    factors: &[&'a DenseMatrix<S>],
    mode: usize,
    z: usize,
    rows: &mut Vec<&'a [S]>,
) {
    rows.clear();
    for (m, f) in factors.iter().enumerate() {
        if m != mode {
            rows.push(f.row(base[m] + einds[m][z] as usize));
        }
    }
}

/// Sequential COO Mttkrp.
pub fn mttkrp_seq<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_seq_backend(x, factors, mode, simd::current_backend())
}

/// Sequential COO Mttkrp with an explicit backend.
pub fn mttkrp_seq_backend<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let _span = obs::span!("mttkrp.seq");
    charge_coo(x, r);
    simd::note_dispatch(backend);
    let mut out = DenseMatrix::zeros(x.shape().dim(mode) as usize, r);
    let rows = x.mode_inds(mode);
    let mut rows_buf = Vec::with_capacity(factors.len());
    for z in 0..x.nnz() {
        gather_rows(x, factors, mode, z, &mut rows_buf);
        let dst = out.row_mut(rows[z] as usize);
        simd::accum_rows(backend, dst, x.vals()[z], &rows_buf);
    }
    Ok(out)
}

/// Nonzero-parallel COO Mttkrp with atomic output updates (the paper's
/// COO-Mttkrp-OMP).
pub fn mttkrp_atomic<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_atomic_backend(x, factors, mode, simd::current_backend())
}

/// Atomic COO Mttkrp with an explicit backend.
pub fn mttkrp_atomic_backend<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let _span = obs::span!("mttkrp.atomic");
    charge_coo(x, r);
    simd::note_dispatch(backend);
    let mut out = DenseMatrix::zeros_par(x.shape().dim(mode) as usize, r);
    {
        let cells = S::as_atomic_slice(out.data_mut());
        let rows = x.mode_inds(mode);
        let m = x.nnz();
        let grain = 1024usize;
        let arena = ScratchArena::new(|| AlignedVec::filled(r, S::ZERO));
        (0..m.div_ceil(grain)).into_par_iter().for_each(|c| {
            arena.with(|scratch| {
                let mut rows_buf = Vec::with_capacity(factors.len());
                let end = ((c + 1) * grain).min(m);
                for z in c * grain..end {
                    gather_rows(x, factors, mode, z, &mut rows_buf);
                    simd::product_rows(backend, scratch, x.vals()[z], &rows_buf);
                    let base = rows[z] as usize * r;
                    for (k, &s) in scratch.iter().enumerate() {
                        cells[base + k].fetch_add(s);
                    }
                }
            });
        });
    }
    Ok(out)
}

/// Nonzero-parallel COO Mttkrp with per-worker private outputs (ablation).
///
/// Each *participating worker* (not each fold chunk, as in the seed) lazily
/// allocates exactly one private `I_n x R` accumulator and drains chunks
/// from a shared counter, so scratch memory scales with the thread count.
/// The partial outputs are then summed in parallel over disjoint stripes of
/// the final matrix.
pub fn mttkrp_privatized<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_privatized_backend(x, factors, mode, simd::current_backend())
}

/// Privatized COO Mttkrp with an explicit backend.
pub fn mttkrp_privatized_backend<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let _span = obs::span!("mttkrp.privatized");
    charge_coo(x, r);
    simd::note_dispatch(backend);
    let rows_n = x.shape().dim(mode) as usize;
    let rows = x.mode_inds(mode);
    let m = x.nnz();
    let grain = 4096usize;
    let nchunks = m.div_ceil(grain);
    let next = AtomicUsize::new(0);
    let partials: Vec<DenseMatrix<S>> = rayon::broadcast(|_ctx| {
        let mut local: Option<DenseMatrix<S>> = None;
        let mut rows_buf = Vec::with_capacity(factors.len());
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= nchunks {
                break;
            }
            let acc = local.get_or_insert_with(|| DenseMatrix::zeros(rows_n, r));
            let end = ((c + 1) * grain).min(m);
            for z in c * grain..end {
                gather_rows(x, factors, mode, z, &mut rows_buf);
                let dst = acc.row_mut(rows[z] as usize);
                simd::accum_rows(backend, dst, x.vals()[z], &rows_buf);
            }
        }
        local
    })
    .into_iter()
    .flatten()
    .collect();
    let mut out = DenseMatrix::zeros_par(rows_n, r);
    let stripe = 4096usize;
    out.data_mut()
        .par_chunks_mut(stripe)
        .enumerate()
        .for_each(|(ci, dst)| {
            let base = ci * stripe;
            for p in &partials {
                let src = &p.data()[base..base + dst.len()];
                simd::add_assign(backend, dst, src);
            }
        });
    Ok(out)
}

/// Nonzero-parallel COO Mttkrp with one mutex per output row (ablation).
pub fn mttkrp_row_locked<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_row_locked_backend(x, factors, mode, simd::current_backend())
}

/// Row-locked COO Mttkrp with an explicit backend.
pub fn mttkrp_row_locked_backend<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let _span = obs::span!("mttkrp.row_locked");
    charge_coo(x, r);
    simd::note_dispatch(backend);
    let rows_n = x.shape().dim(mode) as usize;
    let locked: Vec<parking_lot::Mutex<Vec<S>>> = (0..rows_n)
        .map(|_| parking_lot::Mutex::new(vec![S::ZERO; r]))
        .collect();
    let rows = x.mode_inds(mode);
    let m = x.nnz();
    let grain = 1024usize;
    let arena = ScratchArena::new(|| AlignedVec::filled(r, S::ZERO));
    (0..m.div_ceil(grain)).into_par_iter().for_each(|c| {
        arena.with(|scratch| {
            let mut rows_buf = Vec::with_capacity(factors.len());
            let end = ((c + 1) * grain).min(m);
            for z in c * grain..end {
                gather_rows(x, factors, mode, z, &mut rows_buf);
                simd::product_rows(backend, scratch, x.vals()[z], &rows_buf);
                let mut row = locked[rows[z] as usize].lock();
                simd::add_assign(backend, &mut row, scratch);
            }
        });
    });
    let mut out = DenseMatrix::zeros(rows_n, r);
    for (i, cell) in locked.into_iter().enumerate() {
        out.row_mut(i).copy_from_slice(&cell.into_inner());
    }
    Ok(out)
}

/// Output-partitioned COO Mttkrp (see [`MttkrpStrategy::Scheduled`]). Uses
/// the cached [`crate::sched::row_schedule`] for `(x, mode)`.
pub fn mttkrp_sched<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    check_factors(x.shape(), factors, mode)?;
    let sched = crate::sched::row_schedule(x, mode);
    mttkrp_sched_with(x, factors, mode, &sched)
}

/// Scheduled COO Mttkrp with an explicit backend (cached schedule).
pub fn mttkrp_sched_backend<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    check_factors(x.shape(), factors, mode)?;
    let sched = crate::sched::row_schedule(x, mode);
    mttkrp_sched_with_backend(x, factors, mode, &sched, backend)
}

/// Output-partitioned COO Mttkrp against a prebuilt [`RowSchedule`].
///
/// Every task owns a contiguous output row range; within it, rows are
/// processed in ascending order and each row's nonzeros in ascending
/// original position, so the accumulation order — and hence the floating-
/// point result — is identical across runs and thread counts.
pub fn mttkrp_sched_with<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    sched: &RowSchedule,
) -> Result<DenseMatrix<S>> {
    mttkrp_sched_with_backend(x, factors, mode, sched, simd::current_backend())
}

/// Scheduled COO Mttkrp against a prebuilt schedule, with an explicit
/// backend. The backend only changes *how* each lane-wise product is
/// computed, never the accumulation order, so results stay bitwise
/// identical across backends, runs, and thread counts.
pub fn mttkrp_sched_with_backend<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    sched: &RowSchedule,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    if sched.mode() != mode {
        return Err(TensorError::FactorMismatch(format!(
            "schedule built for mode {}, kernel invoked for mode {mode}",
            sched.mode()
        )));
    }
    let _span = obs::span!("mttkrp.scheduled");
    charge_coo(x, r);
    simd::note_dispatch(backend);
    let rows_n = x.shape().dim(mode) as usize;
    let mut out = DenseMatrix::zeros_par(rows_n, r);
    let mut tasks = split_row_ranges(
        out.data_mut(),
        r,
        (0..sched.num_tasks()).map(|t| sched.task_rows(t)),
    );
    tasks.par_iter_mut().for_each(|(row_base, slice)| {
        let row_base = *row_base;
        let slice = &mut **slice;
        let mut rows_buf = Vec::with_capacity(factors.len());
        for i in row_base..row_base + slice.len() / r {
            let dst = &mut slice[(i - row_base) * r..][..r];
            for &z in sched.row_entries(i) {
                let z = z as usize;
                gather_rows(x, factors, mode, z, &mut rows_buf);
                simd::accum_rows(backend, dst, x.vals()[z], &rows_buf);
            }
        }
    });
    Ok(out)
}

/// COO Mttkrp with an explicit strategy (ambient backend).
pub fn mttkrp_with<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    strategy: MttkrpStrategy,
) -> Result<DenseMatrix<S>> {
    mttkrp_with_backend(x, factors, mode, strategy, simd::current_backend())
}

/// COO Mttkrp with an explicit strategy *and* backend — the entry point
/// the supervisor's per-cell (strategy, backend) fallback chain drives.
pub fn mttkrp_with_backend<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    strategy: MttkrpStrategy,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    match strategy {
        MttkrpStrategy::Seq => mttkrp_seq_backend(x, factors, mode, backend),
        MttkrpStrategy::Atomic => mttkrp_atomic_backend(x, factors, mode, backend),
        MttkrpStrategy::Privatized => mttkrp_privatized_backend(x, factors, mode, backend),
        MttkrpStrategy::RowLocked => mttkrp_row_locked_backend(x, factors, mode, backend),
        MttkrpStrategy::Scheduled => mttkrp_sched_backend(x, factors, mode, backend),
    }
}

/// COO Mttkrp with the paper's reference strategy (atomic).
///
/// # Examples
/// ```
/// use tenbench_core::prelude::*;
/// use tenbench_core::kernels::mttkrp::mttkrp;
///
/// let x = CooTensor::<f32>::from_entries(
///     Shape::new(vec![2, 2, 2]),
///     vec![(vec![0, 0, 0], 1.0), (vec![1, 1, 1], 2.0)],
/// )?;
/// // All-ones rank-3 factors: each output row sums its nonzero values.
/// let f: Vec<DenseMatrix<f32>> = (0..3).map(|_| DenseMatrix::constant(2, 3, 1.0)).collect();
/// let frefs: Vec<&DenseMatrix<f32>> = f.iter().collect();
/// let out = mttkrp(&x, &frefs, 0)?;
/// assert_eq!(out.row(0), &[1.0, 1.0, 1.0]);
/// assert_eq!(out.row(1), &[2.0, 2.0, 2.0]);
/// # Ok::<(), TensorError>(())
/// ```
pub fn mttkrp<S: Scalar>(
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_atomic(x, factors, mode)
}

/// HiCOO-Mttkrp-OMP (Algorithm 2): block-parallel, with per-block base
/// offsets into the factor matrices so only 8-bit element indices are
/// touched in the inner loop. Blocks sharing an output row block still race,
/// so updates remain atomic — the paper keeps advanced lock-avoiding
/// scheduling out of the reference implementation.
pub fn mttkrp_hicoo<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_hicoo_backend(h, factors, mode, simd::current_backend())
}

/// Block-parallel atomic HiCOO Mttkrp with an explicit backend.
pub fn mttkrp_hicoo_backend<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(h.shape(), factors, mode)?;
    let _span = obs::span!("mttkrp.hicoo");
    charge_hicoo(h, r);
    simd::note_dispatch(backend);
    let mut out = DenseMatrix::zeros_par(h.shape().dim(mode) as usize, r);
    let bits = h.block_bits();
    {
        let cells = S::as_atomic_slice(out.data_mut());
        let order = h.order();
        let arena = ScratchArena::new(|| (AlignedVec::filled(r, S::ZERO), vec![0usize; order]));
        (0..h.num_blocks()).into_par_iter().for_each(|b| {
            arena.with(|(scratch, base)| {
                let mut rows_buf = Vec::with_capacity(order);
                // Base row offsets of this block in every factor matrix.
                for m in 0..order {
                    base[m] = (h.block_ind(b, m) as usize) << bits;
                }
                for z in h.block_range(b) {
                    gather_block_rows(h.einds(), base, factors, mode, z, &mut rows_buf);
                    simd::product_rows(backend, scratch, h.vals()[z], &rows_buf);
                    let out_row = base[mode] + h.einds()[mode][z] as usize;
                    for (k, &s) in scratch.iter().enumerate() {
                        cells[out_row * r + k].fetch_add(s);
                    }
                }
            });
        });
    }
    Ok(out)
}

/// Output-partitioned HiCOO Mttkrp (the tentpole variant of this module).
/// Uses the cached [`crate::sched::mode_schedule`] for `(h, mode)`.
pub fn mttkrp_hicoo_sched<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    check_factors(h.shape(), factors, mode)?;
    let sched = crate::sched::mode_schedule(h, mode);
    mttkrp_hicoo_sched_with(h, factors, mode, &sched)
}

/// Scheduled HiCOO Mttkrp with an explicit backend (cached schedule).
pub fn mttkrp_hicoo_sched_backend<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    check_factors(h.shape(), factors, mode)?;
    let sched = crate::sched::mode_schedule(h, mode);
    mttkrp_hicoo_sched_with_backend(h, factors, mode, &sched, backend)
}

/// Output-partitioned HiCOO Mttkrp against a prebuilt [`ModeSchedule`].
///
/// All blocks that write a given output row block are grouped into the same
/// task, so tasks write disjoint `&mut` stripes of the output — no atomics,
/// no locks. Groups are visited in ascending output order, blocks ascending
/// within a group, and nonzeros ascending within a block, fixing the
/// floating-point accumulation order across runs and thread counts.
pub fn mttkrp_hicoo_sched_with<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    sched: &ModeSchedule,
) -> Result<DenseMatrix<S>> {
    mttkrp_hicoo_sched_with_backend(h, factors, mode, sched, simd::current_backend())
}

/// Scheduled HiCOO Mttkrp against a prebuilt [`ModeSchedule`] with an
/// explicit backend — the strategy CP-ALS pins, now vectorized. Backend
/// choice never changes the accumulation order, so results stay bitwise
/// identical across backends, runs, and thread counts.
pub fn mttkrp_hicoo_sched_with_backend<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    sched: &ModeSchedule,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(h.shape(), factors, mode)?;
    if sched.mode() != mode {
        return Err(TensorError::FactorMismatch(format!(
            "schedule built for mode {}, kernel invoked for mode {mode}",
            sched.mode()
        )));
    }
    let _span = obs::span!("mttkrp.hicoo.scheduled");
    charge_hicoo(h, r);
    simd::note_dispatch(backend);
    let rows_n = h.shape().dim(mode) as usize;
    let mut out = DenseMatrix::zeros_par(rows_n, r);
    let bits = h.block_bits();
    let order = h.order();
    let mut tasks = split_row_ranges(
        out.data_mut(),
        r,
        (0..sched.num_tasks()).map(|t| sched.task_row_range(t, rows_n)),
    );
    // Order-3 fast path: one fused call per *block*, so the dispatch
    // boundary is crossed per block rather than per nonzero.
    let three = (order == 3).then(|| non_mode_pair(mode));
    tasks.par_iter_mut().enumerate().for_each(|(t, task)| {
        let (row_base, slice) = (task.0, &mut *task.1);
        let mut base = vec![0usize; order];
        let mut rows_buf = Vec::with_capacity(order);
        for g in sched.task_groups(t) {
            for &b in sched.group_blocks(g) {
                let b = b as usize;
                for m in 0..order {
                    base[m] = (h.block_ind(b, m) as usize) << bits;
                }
                if let Some((ma, mb)) = three {
                    let zs = h.block_range(b);
                    simd::mttkrp_block3(
                        backend,
                        slice,
                        row_base,
                        r,
                        &h.vals()[zs.clone()],
                        zs,
                        &h.einds()[mode],
                        base[mode],
                        factors[ma].data(),
                        &h.einds()[ma],
                        base[ma],
                        factors[mb].data(),
                        &h.einds()[mb],
                        base[mb],
                    );
                    continue;
                }
                for z in h.block_range(b) {
                    gather_block_rows(h.einds(), &base, factors, mode, z, &mut rows_buf);
                    let out_row = base[mode] + h.einds()[mode][z] as usize;
                    let dst = &mut slice[(out_row - row_base) * r..][..r];
                    simd::accum_rows(backend, dst, h.vals()[z], &rows_buf);
                }
            }
        }
    });
    Ok(out)
}

/// Sequential HiCOO Mttkrp baseline.
pub fn mttkrp_hicoo_seq<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_hicoo_seq_backend(h, factors, mode, simd::current_backend())
}

/// Sequential HiCOO Mttkrp with an explicit backend.
pub fn mttkrp_hicoo_seq_backend<S: Scalar>(
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(h.shape(), factors, mode)?;
    let _span = obs::span!("mttkrp.hicoo.seq");
    charge_hicoo(h, r);
    simd::note_dispatch(backend);
    let mut out = DenseMatrix::zeros(h.shape().dim(mode) as usize, r);
    let bits = h.block_bits();
    let order = h.order();
    let mut rows_buf = Vec::with_capacity(order);
    for b in 0..h.num_blocks() {
        let base: Vec<usize> = (0..order)
            .map(|m| (h.block_ind(b, m) as usize) << bits)
            .collect();
        for z in h.block_range(b) {
            gather_block_rows(h.einds(), &base, factors, mode, z, &mut rows_buf);
            let dst = out.row_mut(base[mode] + h.einds()[mode][z] as usize);
            simd::accum_rows(backend, dst, h.vals()[z], &rows_buf);
        }
    }
    Ok(out)
}

/// Block-parallel atomic Mttkrp over vb-HiCOO: the HiCOO algorithm with the
/// value loads taken from the padded, 64-byte-aligned runs.
pub fn mttkrp_vb<S: Scalar>(
    x: &VbHicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_vb_backend(x, factors, mode, simd::current_backend())
}

/// [`mttkrp_vb`] with an explicit kernel backend.
pub fn mttkrp_vb_backend<S: Scalar>(
    x: &VbHicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let _span = obs::span!("mttkrp.vb");
    charge_vb(x, r);
    simd::note_dispatch(backend);
    let mut out = DenseMatrix::zeros_par(x.shape().dim(mode) as usize, r);
    let bits = x.block_bits();
    {
        let cells = S::as_atomic_slice(out.data_mut());
        let order = x.order();
        let arena = ScratchArena::new(|| (AlignedVec::filled(r, S::ZERO), vec![0usize; order]));
        (0..x.num_blocks()).into_par_iter().for_each(|b| {
            arena.with(|(scratch, base)| {
                let mut rows_buf = Vec::with_capacity(order);
                for m in 0..order {
                    base[m] = (x.block_ind(b, m) as usize) << bits;
                }
                let bvals = x.block_vals(b);
                for (k, z) in x.block_range(b).enumerate() {
                    gather_block_rows(x.einds(), base, factors, mode, z, &mut rows_buf);
                    simd::product_rows(backend, scratch, bvals[k], &rows_buf);
                    let out_row = base[mode] + x.einds()[mode][z] as usize;
                    for (k, &s) in scratch.iter().enumerate() {
                        cells[out_row * r + k].fetch_add(s);
                    }
                }
            });
        });
    }
    Ok(out)
}

/// Output-partitioned vb-HiCOO Mttkrp: builds a [`ModeSchedule`] from the
/// vb tensor's own block structure and runs the scheduled kernel.
pub fn mttkrp_vb_sched<S: Scalar>(
    x: &VbHicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_vb_sched_backend(x, factors, mode, simd::current_backend())
}

/// [`mttkrp_vb_sched`] with an explicit kernel backend.
pub fn mttkrp_vb_sched_backend<S: Scalar>(
    x: &VbHicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    check_factors(x.shape(), factors, mode)?;
    let sched = crate::sched::vb_mode_schedule(x, mode);
    mttkrp_vb_sched_with_backend(x, factors, mode, &sched, backend)
}

/// Scheduled vb-HiCOO Mttkrp against a prebuilt [`ModeSchedule`] (the
/// schedule of the source HiCOO tensor is structurally identical and may be
/// reused). Same disjoint-stripe, fixed-order accumulation as the HiCOO
/// variant: bitwise-deterministic, and bitwise-identical across backends.
pub fn mttkrp_vb_sched_with_backend<S: Scalar>(
    x: &VbHicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    sched: &ModeSchedule,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    if sched.mode() != mode {
        return Err(TensorError::FactorMismatch(format!(
            "schedule built for mode {}, kernel invoked for mode {mode}",
            sched.mode()
        )));
    }
    let _span = obs::span!("mttkrp.vb.scheduled");
    charge_vb(x, r);
    simd::note_dispatch(backend);
    let rows_n = x.shape().dim(mode) as usize;
    let mut out = DenseMatrix::zeros_par(rows_n, r);
    let bits = x.block_bits();
    let order = x.order();
    let mut tasks = split_row_ranges(
        out.data_mut(),
        r,
        (0..sched.num_tasks()).map(|t| sched.task_row_range(t, rows_n)),
    );
    // Order-3 fast path: one fused call per block (see the HiCOO variant).
    let three = (order == 3).then(|| non_mode_pair(mode));
    tasks.par_iter_mut().enumerate().for_each(|(t, task)| {
        let (row_base, slice) = (task.0, &mut *task.1);
        let mut base = vec![0usize; order];
        let mut rows_buf = Vec::with_capacity(order);
        for g in sched.task_groups(t) {
            for &b in sched.group_blocks(g) {
                let b = b as usize;
                for m in 0..order {
                    base[m] = (x.block_ind(b, m) as usize) << bits;
                }
                let bvals = x.block_vals(b);
                if let Some((ma, mb)) = three {
                    simd::mttkrp_block3(
                        backend,
                        slice,
                        row_base,
                        r,
                        bvals,
                        x.block_range(b),
                        &x.einds()[mode],
                        base[mode],
                        factors[ma].data(),
                        &x.einds()[ma],
                        base[ma],
                        factors[mb].data(),
                        &x.einds()[mb],
                        base[mb],
                    );
                    continue;
                }
                for (k, z) in x.block_range(b).enumerate() {
                    gather_block_rows(x.einds(), &base, factors, mode, z, &mut rows_buf);
                    let out_row = base[mode] + x.einds()[mode][z] as usize;
                    let dst = &mut slice[(out_row - row_base) * r..][..r];
                    simd::accum_rows(backend, dst, bvals[k], &rows_buf);
                }
            }
        }
    });
    Ok(out)
}

/// Sequential vb-HiCOO Mttkrp baseline.
pub fn mttkrp_vb_seq<S: Scalar>(
    x: &VbHicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    mttkrp_vb_seq_backend(x, factors, mode, simd::current_backend())
}

/// [`mttkrp_vb_seq`] with an explicit kernel backend.
pub fn mttkrp_vb_seq_backend<S: Scalar>(
    x: &VbHicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
    backend: KernelBackend,
) -> Result<DenseMatrix<S>> {
    let r = check_factors(x.shape(), factors, mode)?;
    let _span = obs::span!("mttkrp.vb.seq");
    charge_vb(x, r);
    simd::note_dispatch(backend);
    let mut out = DenseMatrix::zeros(x.shape().dim(mode) as usize, r);
    let bits = x.block_bits();
    let order = x.order();
    let mut rows_buf = Vec::with_capacity(order);
    for b in 0..x.num_blocks() {
        let base: Vec<usize> = (0..order)
            .map(|m| (x.block_ind(b, m) as usize) << bits)
            .collect();
        let bvals = x.block_vals(b);
        for (k, z) in x.block_range(b).enumerate() {
            gather_block_rows(x.einds(), &base, factors, mode, z, &mut rows_buf);
            let dst = out.row_mut(base[mode] + x.einds()[mode][z] as usize);
            simd::accum_rows(backend, dst, bvals[k], &rows_buf);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::scalar::approx_eq;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![1, 2, 1], 3.0),
                (vec![2, 3, 0], 4.0),
                (vec![2, 3, 4], 5.0),
                (vec![0, 1, 1], -2.5),
            ],
        )
        .unwrap()
    }

    fn factors(shape: &Shape, r: usize) -> Vec<DenseMatrix<f32>> {
        (0..shape.order())
            .map(|m| {
                DenseMatrix::from_fn(shape.dim(m) as usize, r, |i, j| {
                    ((i * 31 + j * 7 + m * 13) % 5) as f32 - 2.0
                })
            })
            .collect()
    }

    fn refs(f: &[DenseMatrix<f32>]) -> Vec<&DenseMatrix<f32>> {
        f.iter().collect()
    }

    /// Dense reference: out[i_n][r] = sum over nnz of val * prod factors.
    fn reference(
        x: &CooTensor<f32>,
        factors: &[&DenseMatrix<f32>],
        mode: usize,
    ) -> DenseMatrix<f64> {
        let r = factors[0].cols();
        let mut out = DenseMatrix::<f64>::zeros(x.shape().dim(mode) as usize, r);
        for (c, v) in x.iter_entries() {
            for k in 0..r {
                let mut acc = v as f64;
                for (m, f) in factors.iter().enumerate() {
                    if m != mode {
                        acc *= f[(c[m] as usize, k)] as f64;
                    }
                }
                out[(c[mode] as usize, k)] += acc;
            }
        }
        out
    }

    fn assert_matches(a: &DenseMatrix<f32>, b: &DenseMatrix<f64>) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(approx_eq(*x as f64, *y, 1e-5), "mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn all_strategies_match_reference_every_mode() {
        let x = sample();
        let f = factors(x.shape(), 4);
        for mode in 0..3 {
            let expect = reference(&x, &refs(&f), mode);
            for strat in [
                MttkrpStrategy::Seq,
                MttkrpStrategy::Atomic,
                MttkrpStrategy::Privatized,
                MttkrpStrategy::RowLocked,
                MttkrpStrategy::Scheduled,
            ] {
                let got = mttkrp_with(&x, &refs(&f), mode, strat).unwrap();
                assert_matches(&got, &expect);
            }
        }
    }

    #[test]
    fn hicoo_matches_reference_every_mode() {
        let x = sample();
        let f = factors(x.shape(), 4);
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        for mode in 0..3 {
            let expect = reference(&x, &refs(&f), mode);
            let got = mttkrp_hicoo(&h, &refs(&f), mode).unwrap();
            assert_matches(&got, &expect);
            let got_seq = mttkrp_hicoo_seq(&h, &refs(&f), mode).unwrap();
            assert_matches(&got_seq, &expect);
            let got_sched = mttkrp_hicoo_sched(&h, &refs(&f), mode).unwrap();
            assert_matches(&got_sched, &expect);
        }
    }

    #[test]
    fn scheduled_matches_reference_on_contended_tensor() {
        // Many nonzeros per output row exercise grouped accumulation.
        let entries: Vec<(Vec<u32>, f32)> = (0..4000)
            .map(|i| {
                (
                    vec![i % 3, (i * 7) % 50, (i * 11) % 40],
                    (i % 9) as f32 - 4.0,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![3, 50, 40]), entries).unwrap();
        let f = factors(x.shape(), 16);
        let h = HicooTensor::from_coo(&x, 3).unwrap();
        for mode in 0..3 {
            let expect = reference(&x, &refs(&f), mode);
            assert_matches(&mttkrp_sched(&x, &refs(&f), mode).unwrap(), &expect);
            assert_matches(&mttkrp_hicoo_sched(&h, &refs(&f), mode).unwrap(), &expect);
        }
    }

    #[test]
    fn scheduled_is_bitwise_deterministic() {
        let entries: Vec<(Vec<u32>, f32)> = (0..2500)
            .map(|i| {
                (
                    vec![(i * 13) % 30, (i * 7) % 30, (i * 3) % 30],
                    0.1 * i as f32,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![30, 30, 30]), entries).unwrap();
        let f = factors(x.shape(), 8);
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        for mode in 0..3 {
            let a = mttkrp_sched(&x, &refs(&f), mode).unwrap();
            let b = crate::par::with_threads(4, || mttkrp_sched(&x, &refs(&f), mode).unwrap());
            assert_eq!(a.data(), b.data(), "COO mode {mode} not bitwise equal");
            let ha = mttkrp_hicoo_sched(&h, &refs(&f), mode).unwrap();
            let hb =
                crate::par::with_threads(4, || mttkrp_hicoo_sched(&h, &refs(&f), mode).unwrap());
            assert_eq!(ha.data(), hb.data(), "HiCOO mode {mode} not bitwise equal");
        }
    }

    #[test]
    fn backends_are_bitwise_identical_across_strategies() {
        // The SIMD backend is lane-wise and order-preserving, so every
        // strategy must produce bit-for-bit the same output either way —
        // including non-lane-multiple ranks that exercise vector tails.
        let entries: Vec<(Vec<u32>, f32)> = (0..3000)
            .map(|i| {
                (
                    vec![(i * 13) % 20, (i * 7) % 30, (i * 3) % 25],
                    0.01 * i as f32 - 3.0,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![20, 30, 25]), entries).unwrap();
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        for r in [3usize, 8, 16, 17] {
            let f = factors(x.shape(), r);
            for mode in 0..3 {
                for strat in [
                    MttkrpStrategy::Seq,
                    MttkrpStrategy::Atomic,
                    MttkrpStrategy::Privatized,
                    MttkrpStrategy::RowLocked,
                    MttkrpStrategy::Scheduled,
                ] {
                    let s = mttkrp_with_backend(&x, &refs(&f), mode, strat, KernelBackend::Scalar)
                        .unwrap();
                    let v = mttkrp_with_backend(&x, &refs(&f), mode, strat, KernelBackend::Simd)
                        .unwrap();
                    // Atomic/privatized strategies are order-nondeterministic
                    // across *runs*, but single-threaded here they agree;
                    // compare approximately for those, bitwise for the rest.
                    if matches!(strat, MttkrpStrategy::Seq | MttkrpStrategy::Scheduled) {
                        assert_eq!(s.data(), v.data(), "{strat:?} r={r} mode={mode}");
                    } else {
                        for (a, b) in s.data().iter().zip(v.data()) {
                            assert!(approx_eq(*a, *b, 1e-4), "{strat:?} r={r}: {a} vs {b}");
                        }
                    }
                }
                let hs =
                    mttkrp_hicoo_sched_backend(&h, &refs(&f), mode, KernelBackend::Scalar).unwrap();
                let hv =
                    mttkrp_hicoo_sched_backend(&h, &refs(&f), mode, KernelBackend::Simd).unwrap();
                assert_eq!(hs.data(), hv.data(), "hicoo sched r={r} mode={mode}");
                let qs =
                    mttkrp_hicoo_seq_backend(&h, &refs(&f), mode, KernelBackend::Scalar).unwrap();
                let qv =
                    mttkrp_hicoo_seq_backend(&h, &refs(&f), mode, KernelBackend::Simd).unwrap();
                assert_eq!(qs.data(), qv.data(), "hicoo seq r={r} mode={mode}");
            }
        }
    }

    #[test]
    fn vb_matches_hicoo_bitwise() {
        // The value-blocked layout only moves value storage; the iteration
        // order is identical to HiCOO, so seq/sched results must be bitwise
        // equal to the HiCOO kernels in both backends.
        let entries: Vec<(Vec<u32>, f32)> = (0..3000)
            .map(|i| {
                (
                    vec![(i * 13) % 20, (i * 7) % 30, (i * 3) % 25],
                    0.01 * i as f32 - 3.0,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![20, 30, 25]), entries).unwrap();
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        let vb = VbHicooTensor::from_hicoo(&h);
        for r in [3usize, 8, 16] {
            let f = factors(x.shape(), r);
            for mode in 0..3 {
                for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                    let want = mttkrp_hicoo_seq_backend(&h, &refs(&f), mode, backend).unwrap();
                    let got = mttkrp_vb_seq_backend(&vb, &refs(&f), mode, backend).unwrap();
                    assert_eq!(want.data(), got.data(), "seq r={r} mode={mode} {backend:?}");
                    let want = mttkrp_hicoo_sched_backend(&h, &refs(&f), mode, backend).unwrap();
                    let got = mttkrp_vb_sched_backend(&vb, &refs(&f), mode, backend).unwrap();
                    assert_eq!(
                        want.data(),
                        got.data(),
                        "sched r={r} mode={mode} {backend:?}"
                    );
                    let atom = mttkrp_vb_backend(&vb, &refs(&f), mode, backend).unwrap();
                    for (a, b) in want.data().iter().zip(atom.data()) {
                        assert!(approx_eq(*a, *b, 1e-4), "atomic r={r}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn scheduled_rejects_mode_mismatched_schedule() {
        let x = sample();
        let f = factors(x.shape(), 4);
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        let s = crate::sched::mode_schedule(&h, 0);
        assert!(mttkrp_hicoo_sched_with(&h, &refs(&f), 1, &s).is_err());
        let rs = crate::sched::row_schedule(&x, 2);
        assert!(mttkrp_sched_with(&x, &refs(&f), 0, &rs).is_err());
    }

    #[test]
    fn scheduled_handles_empty_tensor() {
        let x = CooTensor::<f32>::empty(Shape::new(vec![3, 4, 5]));
        let f = factors(x.shape(), 4);
        let out = mttkrp_sched(&x, &refs(&f), 0).unwrap();
        assert!(out.data().iter().all(|&v| v == 0.0));
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        let hout = mttkrp_hicoo_sched(&h, &refs(&f), 1).unwrap();
        assert_eq!(hout.rows(), 4);
        assert!(hout.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn factor_validation() {
        let x = sample();
        let f = factors(x.shape(), 4);
        // Wrong count.
        assert!(matches!(
            mttkrp(&x, &refs(&f)[..2], 0),
            Err(TensorError::FactorMismatch(_))
        ));
        // Wrong rank on one factor.
        let mut bad = factors(x.shape(), 4);
        bad[1] = DenseMatrix::zeros(4, 3);
        assert!(mttkrp(&x, &refs(&bad), 0).is_err());
        // Wrong row count.
        let mut bad2 = factors(x.shape(), 4);
        bad2[2] = DenseMatrix::zeros(6, 4);
        assert!(mttkrp(&x, &refs(&bad2), 0).is_err());
        // Zero rank.
        let zero = vec![
            DenseMatrix::<f32>::zeros(3, 0),
            DenseMatrix::zeros(4, 0),
            DenseMatrix::zeros(5, 0),
        ];
        assert!(mttkrp(&x, &refs(&zero), 0).is_err());
    }

    #[test]
    fn fourth_order_mttkrp() {
        let x = CooTensor::from_entries(
            Shape::new(vec![2, 3, 4, 5]),
            vec![
                (vec![0, 1, 2, 3], 2.0f32),
                (vec![1, 2, 0, 0], 4.0),
                (vec![0, 0, 0, 0], 1.0),
            ],
        )
        .unwrap();
        let f = factors(x.shape(), 3);
        for mode in 0..4 {
            let expect = reference(&x, &refs(&f), mode);
            let got = mttkrp(&x, &refs(&f), mode).unwrap();
            assert_matches(&got, &expect);
        }
    }

    #[test]
    fn contended_rows_accumulate_correctly() {
        // Many nonzeros mapping to the same output row stress the atomics.
        let entries: Vec<(Vec<u32>, f32)> = (0..5000)
            .map(|i| (vec![0, i % 50, (i * 7) % 40], 1.0))
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![1, 50, 40]), entries).unwrap();
        let f = factors(x.shape(), 8);
        let expect = reference(&x, &refs(&f), 0);
        let got = mttkrp_atomic(&x, &refs(&f), 0).unwrap();
        for (a, b) in got.data().iter().zip(expect.data()) {
            assert!(approx_eq(*a as f64, *b, 1e-3), "{a} vs {b}");
        }
    }
}
