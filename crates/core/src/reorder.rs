//! Mode index reordering — the locality technique the paper points at for
//! the irregular operand gathers ("data reuse of v could happen if its
//! access has or gains a good localized pattern naturally or from
//! reordering techniques", §3.2.1, citing Li et al. ICS'19). Provided as an
//! extension with a frequency-based heuristic: relabeling a mode so its
//! most frequent indices become smallest packs the hot operand rows
//! together, which measurably raises cache hit rates on power-law tensors.

use crate::coo::CooTensor;
use crate::dense::{DenseMatrix, DenseVector};
use crate::error::{Result, TensorError};
use crate::scalar::Scalar;

/// Validate that `perm` is a permutation of `0..dim`.
fn check_permutation(perm: &[u32], dim: u32) -> Result<()> {
    if perm.len() != dim as usize {
        return Err(TensorError::OperandLengthMismatch {
            expected: dim as usize,
            actual: perm.len(),
        });
    }
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p as usize >= perm.len() || seen[p as usize] {
            return Err(TensorError::InvalidStructure(format!(
                "not a permutation: duplicate or out-of-range image {p}"
            )));
        }
        seen[p as usize] = true;
    }
    Ok(())
}

/// Relabel `mode`'s indices in place: `new_index = perm[old_index]`. The
/// tensor's sort state is invalidated (relabeling breaks any order).
pub fn apply_mode_permutation<S: Scalar>(
    x: &mut CooTensor<S>,
    mode: usize,
    perm: &[u32],
) -> Result<()> {
    x.shape().check_mode(mode)?;
    check_permutation(perm, x.shape().dim(mode))?;
    x.relabel_mode(mode, perm);
    Ok(())
}

/// The frequency permutation of one mode: the most frequent old index maps
/// to 0, the next to 1, and so on (ties broken by old index for
/// determinism). Unused indices follow in index order.
pub fn frequency_permutation<S: Scalar>(x: &CooTensor<S>, mode: usize) -> Result<Vec<u32>> {
    x.shape().check_mode(mode)?;
    let dim = x.shape().dim(mode) as usize;
    let mut counts = vec![0u64; dim];
    for &i in x.mode_inds(mode) {
        counts[i as usize] += 1;
    }
    let mut order: Vec<u32> = (0..dim as u32).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(counts[i as usize]), i));
    // order[rank] = old index; invert to perm[old] = rank.
    let mut perm = vec![0u32; dim];
    for (rank, &old) in order.iter().enumerate() {
        perm[old as usize] = rank as u32;
    }
    Ok(perm)
}

/// A seeded pseudo-random permutation of `0..dim` (Fisher–Yates), the
/// adversarial baseline for the reordering ablation.
pub fn random_permutation(dim: u32, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let mut perm: Vec<u32> = (0..dim).collect();
    for i in (1..dim as usize).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Permute a Ttv operand to match a relabeled mode: `out[perm[i]] = v[i]`.
pub fn permute_vector<S: Scalar>(v: &DenseVector<S>, perm: &[u32]) -> Result<DenseVector<S>> {
    check_permutation(perm, v.len() as u32)?;
    let mut out = DenseVector::zeros(v.len());
    for (i, &p) in perm.iter().enumerate() {
        out[p as usize] = v[i];
    }
    Ok(out)
}

/// Permute a factor matrix's rows to match a relabeled mode:
/// `out.row(perm[i]) = m.row(i)`.
pub fn permute_matrix_rows<S: Scalar>(m: &DenseMatrix<S>, perm: &[u32]) -> Result<DenseMatrix<S>> {
    check_permutation(perm, m.rows() as u32)?;
    let mut out = DenseMatrix::zeros(m.rows(), m.cols());
    for (i, &p) in perm.iter().enumerate() {
        out.row_mut(p as usize).copy_from_slice(m.row(i));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::kernels::ttv::ttv;
    use crate::shape::Shape;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 5]),
            vec![
                (vec![3, 0], 1.0),
                (vec![3, 1], 2.0),
                (vec![3, 2], 3.0),
                (vec![1, 0], 4.0),
                (vec![0, 4], 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn frequency_permutation_ranks_hot_indices_first() {
        let x = sample();
        // Mode 0 counts: index 3 -> 3, index 1 -> 1, index 0 -> 1, index 2 -> 0.
        let perm = frequency_permutation(&x, 0).unwrap();
        assert_eq!(perm[3], 0); // hottest becomes 0
        assert_eq!(perm[0], 1); // tie between 0 and 1 broken by index
        assert_eq!(perm[1], 2);
        assert_eq!(perm[2], 3);
    }

    #[test]
    fn relabel_preserves_values_under_matching_operand_permutation() {
        let x = sample();
        let v = DenseVector::from_fn(5, |i| (i + 1) as f32);
        let baseline = ttv(&x, &v, 1).unwrap();

        let perm = frequency_permutation(&x, 1).unwrap();
        let mut xr = x.clone();
        apply_mode_permutation(&mut xr, 1, &perm).unwrap();
        let vr = permute_vector(&v, &perm).unwrap();
        let reordered = ttv(&xr, &vr, 1).unwrap();
        // Mode-0 indices are untouched, so outputs agree exactly.
        assert_eq!(baseline.to_map(), reordered.to_map());
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        for seed in [1u64, 7, 1234] {
            let p = random_permutation(100, seed);
            assert!(check_permutation(&p, 100).is_ok(), "seed {seed}");
        }
        assert_ne!(random_permutation(100, 1), random_permutation(100, 2));
    }

    #[test]
    fn invalid_permutations_are_rejected() {
        let mut x = sample();
        assert!(apply_mode_permutation(&mut x, 0, &[0, 1, 2]).is_err()); // short
        assert!(apply_mode_permutation(&mut x, 0, &[0, 0, 1, 2]).is_err()); // dup
        assert!(apply_mode_permutation(&mut x, 0, &[0, 1, 2, 9]).is_err()); // range
        assert!(apply_mode_permutation(&mut x, 5, &[0, 1, 2, 3]).is_err()); // mode
    }

    #[test]
    fn permute_matrix_rows_moves_whole_rows() {
        let m = DenseMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        let out = permute_matrix_rows(&m, &[2, 0, 1]).unwrap();
        assert_eq!(out.row(2), m.row(0));
        assert_eq!(out.row(0), m.row(1));
        assert_eq!(out.row(1), m.row(2));
    }
}
