//! Hand-vectorized kernel backend: portable `f32x8` / `f64x4` slice
//! primitives over `core::arch`, with runtime AVX2 detection and a
//! forced-override knob for testing.
//!
//! ## Design rules
//!
//! Every primitive here is **lane-wise and order-preserving**: vector ops
//! are element-wise (`mul`, `add`, `sub`, `div` — never FMA, never a
//! horizontal reduce that reassociates), and any accumulation happens in
//! the same element order as the scalar loop. The consequence — the whole
//! point of the design — is that the SIMD backend is **bitwise identical**
//! to the scalar backend for all five kernels, so switching backends can
//! never perturb the suite's bitwise-determinism contracts
//! (`resume_determinism`, the chaos harness's CP-ALS reference match,
//! scheduled-kernel thread-count stability).
//!
//! On hosts without AVX2 (or for non-f32/f64 scalar types) the Simd
//! backend degrades to a portable lane-chunk path that is the plain loop —
//! bitwise identical by construction — and charges the
//! `backend.unsupported_target` counter so the degradation is observable.
//!
//! ## Backend selection
//!
//! Resolution order for the ambient backend:
//! 1. a process-wide forced override ([`force_backend`], set by tests and
//!    the `--backend` CLI flag),
//! 2. the `TENBENCH_BACKEND` environment variable (`auto`/`scalar`/`simd`,
//!    parsed once per process),
//! 3. `Auto`, which picks Simd when the host supports AVX2 and Scalar
//!    otherwise.
//!
//! Kernel entry points resolve the ambient backend once per call (or take
//! an explicit [`KernelBackend`] from the supervisor / ablation harness)
//! and thread it down to these primitives.

use std::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use tenbench_obs::counters::{
    BACKEND_SCALAR_FALLBACKS, BACKEND_SIMD_CALLS, BACKEND_UNSUPPORTED_TARGET,
};

use crate::kernels::EwOp;
use crate::scalar::Scalar;

/// Which inner-loop implementation a kernel call runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelBackend {
    /// Plain scalar loops (the pre-SIMD reference path).
    Scalar,
    /// Hand-vectorized lanes: AVX2 intrinsics where available, an
    /// order-identical portable lane path otherwise.
    Simd,
}

impl KernelBackend {
    /// Stable lowercase name, used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Simd => "simd",
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A backend *request*: what the user or harness asked for, before
/// hardware resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Pick Simd when the host supports it, Scalar otherwise.
    Auto,
    /// Always run scalar loops.
    Scalar,
    /// Always run the vector path (portable lane fallback off-AVX2).
    Simd,
}

impl BackendChoice {
    /// Parse `auto` / `scalar` / `simd` (case-insensitive).
    pub fn parse(s: &str) -> Option<BackendChoice> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(BackendChoice::Auto),
            "scalar" => Some(BackendChoice::Scalar),
            "simd" => Some(BackendChoice::Simd),
            _ => None,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Scalar => "scalar",
            BackendChoice::Simd => "simd",
        }
    }
}

/// Does the host support AVX2? Detected once, cached for the process.
pub fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

// Forced override: 0 = none, 1 = Auto, 2 = Scalar, 3 = Simd.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Install (or clear, with `None`) a process-wide backend override that
/// outranks `TENBENCH_BACKEND`. Used by the `--backend` CLI flag and by
/// tests that exercise both paths in one process.
pub fn force_backend(choice: Option<BackendChoice>) {
    let v = match choice {
        None => 0,
        Some(BackendChoice::Auto) => 1,
        Some(BackendChoice::Scalar) => 2,
        Some(BackendChoice::Simd) => 3,
    };
    FORCED.store(v, Ordering::Relaxed);
}

fn forced_choice() -> Option<BackendChoice> {
    match FORCED.load(Ordering::Relaxed) {
        1 => Some(BackendChoice::Auto),
        2 => Some(BackendChoice::Scalar),
        3 => Some(BackendChoice::Simd),
        _ => None,
    }
}

fn env_choice() -> BackendChoice {
    static ENV: OnceLock<BackendChoice> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("TENBENCH_BACKEND")
            .ok()
            .and_then(|s| BackendChoice::parse(&s))
            .unwrap_or(BackendChoice::Auto)
    })
}

/// The ambient backend request: forced override, else `TENBENCH_BACKEND`,
/// else `Auto`.
pub fn preferred_choice() -> BackendChoice {
    forced_choice().unwrap_or_else(env_choice)
}

/// Resolve a request against the hardware.
pub fn resolve(choice: BackendChoice) -> KernelBackend {
    match choice {
        BackendChoice::Scalar => KernelBackend::Scalar,
        BackendChoice::Simd => KernelBackend::Simd,
        BackendChoice::Auto => {
            if avx2_available() {
                KernelBackend::Simd
            } else {
                KernelBackend::Scalar
            }
        }
    }
}

/// The backend kernel entry points use when none is passed explicitly.
pub fn current_backend() -> KernelBackend {
    resolve(preferred_choice())
}

/// Charge the `backend.*` observability counters for one kernel-level
/// dispatch. Called once per kernel entry, not per slice primitive.
///
/// * Simd dispatch bumps `backend.simd_calls`, plus
///   `backend.unsupported_target` when the vector path will degrade to
///   the portable lanes (no AVX2).
/// * Scalar dispatch bumps `backend.scalar_fallbacks` only when the
///   ambient preference resolves to Simd — i.e. this call deviated from
///   the preferred backend (supervisor fallback, explicit override).
pub fn note_dispatch(backend: KernelBackend) {
    match backend {
        KernelBackend::Simd => {
            BACKEND_SIMD_CALLS.add(1);
            if !avx2_available() {
                BACKEND_UNSUPPORTED_TARGET.add(1);
            }
        }
        KernelBackend::Scalar => {
            if resolve(preferred_choice()) == KernelBackend::Simd {
                BACKEND_SCALAR_FALLBACKS.add(1);
            }
        }
    }
}

/// Elements per vector register for scalar type `S` (8 for f32, 4 for
/// f64 with 256-bit AVX2 lanes).
pub fn lanes<S: Scalar>() -> usize {
    ((32 / S::BYTES) as usize).max(1)
}

/// Elements per 64-byte alignment unit for scalar type `S` (16 for f32,
/// 8 for f64). The value-blocked HiCOO layout pads each block's value run
/// to a multiple of this so every run starts cache-line- and
/// vector-aligned.
pub fn pad_unit<S: Scalar>() -> usize {
    ((crate::align::SIMD_ALIGN as u64 / S::BYTES) as usize).max(1)
}

#[inline]
fn downcast_mut<S: 'static, T: 'static>(s: &mut [S]) -> Option<&mut [T]> {
    if TypeId::of::<S>() == TypeId::of::<T>() {
        // Safety: S and T are the same type, witnessed by the TypeId check.
        Some(unsafe { &mut *(s as *mut [S] as *mut [T]) })
    } else {
        None
    }
}

#[inline]
fn downcast_ref<S: 'static, T: 'static>(s: &[S]) -> Option<&[T]> {
    if TypeId::of::<S>() == TypeId::of::<T>() {
        // Safety: S and T are the same type, witnessed by the TypeId check.
        Some(unsafe { &*(s as *const [S] as *const [T]) })
    } else {
        None
    }
}

#[inline]
#[cfg(target_arch = "x86_64")]
fn downcast_rows<'a, S: 'static, T: 'static>(rows: &'a [&'a [S]]) -> Option<&'a [&'a [T]]> {
    if TypeId::of::<S>() == TypeId::of::<T>() {
        // Safety: S and T are the same type, witnessed by the TypeId check;
        // `&[S]` and `&[T]` therefore have identical layout.
        Some(unsafe { &*(rows as *const [&[S]] as *const [&[T]]) })
    } else {
        None
    }
}

#[inline]
fn downcast_val<S: 'static + Copy, T: 'static + Copy>(v: S) -> Option<T> {
    if TypeId::of::<S>() == TypeId::of::<T>() {
        // Safety: same type, and both are Copy — a bit-copy is the value.
        Some(unsafe { *(&v as *const S as *const T) })
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// AVX2 intrinsic implementations (x86_64 only). Each function mirrors the
// scalar loop exactly: unaligned loads/stores (callers are not required to
// align, though AlignedVec-backed buffers are), element-wise vector ops,
// scalar tail in the same order. No FMA anywhere — `a*b` then `+` keeps
// the two roundings of the scalar code.
// ---------------------------------------------------------------------------
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::EwOp;
    use std::arch::x86_64::*;

    macro_rules! avx2_family {
        ($t:ty, $lanes:expr, $vec:ty,
         $loadu:ident, $storeu:ident, $set1:ident,
         $add:ident, $sub:ident, $mul:ident, $div:ident,
         $mul_assign:ident, $add_assign:ident, $axpy:ident,
         $combine_into:ident, $combine_assign:ident, $scalar_into:ident,
         $scalar_assign:ident, $accum_rows:ident, $product_rows:ident,
         $block3:ident) => {
            /// `dst[i] *= src[i]`.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $mul_assign(dst: &mut [$t], src: &[$t]) {
                let n = dst.len();
                debug_assert!(src.len() >= n);
                let mut i = 0;
                while i + $lanes <= n {
                    let a = $loadu(dst.as_ptr().add(i));
                    let b = $loadu(src.as_ptr().add(i));
                    $storeu(dst.as_mut_ptr().add(i), $mul(a, b));
                    i += $lanes;
                }
                while i < n {
                    *dst.get_unchecked_mut(i) *= *src.get_unchecked(i);
                    i += 1;
                }
            }

            /// `dst[i] += src[i]`.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $add_assign(dst: &mut [$t], src: &[$t]) {
                let n = dst.len();
                debug_assert!(src.len() >= n);
                let mut i = 0;
                while i + $lanes <= n {
                    let a = $loadu(dst.as_ptr().add(i));
                    let b = $loadu(src.as_ptr().add(i));
                    $storeu(dst.as_mut_ptr().add(i), $add(a, b));
                    i += $lanes;
                }
                while i < n {
                    *dst.get_unchecked_mut(i) += *src.get_unchecked(i);
                    i += 1;
                }
            }

            /// `dst[i] += src[i] * v` (mul then add: two roundings, like
            /// the scalar loop — deliberately not FMA).
            #[target_feature(enable = "avx2")]
            pub unsafe fn $axpy(dst: &mut [$t], src: &[$t], v: $t) {
                let n = dst.len();
                debug_assert!(src.len() >= n);
                let vv = $set1(v);
                let mut i = 0;
                while i + $lanes <= n {
                    let a = $loadu(dst.as_ptr().add(i));
                    let b = $loadu(src.as_ptr().add(i));
                    $storeu(dst.as_mut_ptr().add(i), $add(a, $mul(b, vv)));
                    i += $lanes;
                }
                while i < n {
                    *dst.get_unchecked_mut(i) += *src.get_unchecked(i) * v;
                    i += 1;
                }
            }

            /// `out[i] = op(a[i], b[i])`.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $combine_into(op: EwOp, a: &[$t], b: &[$t], out: &mut [$t]) {
                let n = out.len();
                debug_assert!(a.len() >= n && b.len() >= n);
                let mut i = 0;
                while i + $lanes <= n {
                    let x = $loadu(a.as_ptr().add(i));
                    let y = $loadu(b.as_ptr().add(i));
                    let r = match op {
                        EwOp::Add => $add(x, y),
                        EwOp::Sub => $sub(x, y),
                        EwOp::Mul => $mul(x, y),
                        EwOp::Div => $div(x, y),
                    };
                    $storeu(out.as_mut_ptr().add(i), r);
                    i += $lanes;
                }
                while i < n {
                    *out.get_unchecked_mut(i) = op.apply(*a.get_unchecked(i), *b.get_unchecked(i));
                    i += 1;
                }
            }

            /// `dst[i] = op(dst[i], src[i])`.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $combine_assign(op: EwOp, dst: &mut [$t], src: &[$t]) {
                let n = dst.len();
                debug_assert!(src.len() >= n);
                let mut i = 0;
                while i + $lanes <= n {
                    let x = $loadu(dst.as_ptr().add(i));
                    let y = $loadu(src.as_ptr().add(i));
                    let r = match op {
                        EwOp::Add => $add(x, y),
                        EwOp::Sub => $sub(x, y),
                        EwOp::Mul => $mul(x, y),
                        EwOp::Div => $div(x, y),
                    };
                    $storeu(dst.as_mut_ptr().add(i), r);
                    i += $lanes;
                }
                while i < n {
                    let d = dst.get_unchecked_mut(i);
                    *d = op.apply(*d, *src.get_unchecked(i));
                    i += 1;
                }
            }

            /// `out[i] = op(src[i], s)`.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $scalar_into(op: EwOp, src: &[$t], s: $t, out: &mut [$t]) {
                let n = out.len();
                debug_assert!(src.len() >= n);
                let vv = $set1(s);
                let mut i = 0;
                while i + $lanes <= n {
                    let x = $loadu(src.as_ptr().add(i));
                    let r = match op {
                        EwOp::Add => $add(x, vv),
                        EwOp::Sub => $sub(x, vv),
                        EwOp::Mul => $mul(x, vv),
                        EwOp::Div => $div(x, vv),
                    };
                    $storeu(out.as_mut_ptr().add(i), r);
                    i += $lanes;
                }
                while i < n {
                    *out.get_unchecked_mut(i) = op.apply(*src.get_unchecked(i), s);
                    i += 1;
                }
            }

            /// `dst[i] += val * rows[0][i] * rows[1][i] * ...` — the fused
            /// per-nonzero MTTKRP body. One `#[target_feature]` call covers
            /// the whole rank loop (the split fill/mul/add primitives cannot
            /// inline into non-AVX2 callers, and at rank ≈ 2 vectors their
            /// call overhead dominates). The per-element product order is
            /// `val`, then rows in slice order, then a separate add — the
            /// same two-rounding sequence as the scratch flow, so results
            /// are bitwise-identical.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $accum_rows(dst: &mut [$t], val: $t, rows: &[&[$t]]) {
                let n = dst.len();
                let vv = $set1(val);
                match rows {
                    // Order-3 tensors (two non-mode factors) are the hot
                    // case; a fixed-arity body keeps the lane loop branch-
                    // free.
                    [a, b] => {
                        debug_assert!(a.len() >= n && b.len() >= n);
                        let mut i = 0;
                        while i + $lanes <= n {
                            let p = $mul(
                                $mul(vv, $loadu(a.as_ptr().add(i))),
                                $loadu(b.as_ptr().add(i)),
                            );
                            let d = $loadu(dst.as_ptr().add(i));
                            $storeu(dst.as_mut_ptr().add(i), $add(d, p));
                            i += $lanes;
                        }
                        while i < n {
                            *dst.get_unchecked_mut(i) +=
                                val * *a.get_unchecked(i) * *b.get_unchecked(i);
                            i += 1;
                        }
                    }
                    _ => {
                        let mut i = 0;
                        while i + $lanes <= n {
                            let mut p = vv;
                            for row in rows {
                                debug_assert!(row.len() >= n);
                                p = $mul(p, $loadu(row.as_ptr().add(i)));
                            }
                            let d = $loadu(dst.as_ptr().add(i));
                            $storeu(dst.as_mut_ptr().add(i), $add(d, p));
                            i += $lanes;
                        }
                        while i < n {
                            let mut p = val;
                            for row in rows {
                                p *= *row.get_unchecked(i);
                            }
                            *dst.get_unchecked_mut(i) += p;
                            i += 1;
                        }
                    }
                }
            }

            /// `out[i] = val * rows[0][i] * rows[1][i] * ...` — product-only
            /// variant of the fused body, for strategies that must combine
            /// into the output atomically (or under a lock) afterwards.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $product_rows(out: &mut [$t], val: $t, rows: &[&[$t]]) {
                let n = out.len();
                let vv = $set1(val);
                match rows {
                    [a, b] => {
                        debug_assert!(a.len() >= n && b.len() >= n);
                        let mut i = 0;
                        while i + $lanes <= n {
                            let p = $mul(
                                $mul(vv, $loadu(a.as_ptr().add(i))),
                                $loadu(b.as_ptr().add(i)),
                            );
                            $storeu(out.as_mut_ptr().add(i), p);
                            i += $lanes;
                        }
                        while i < n {
                            *out.get_unchecked_mut(i) =
                                val * *a.get_unchecked(i) * *b.get_unchecked(i);
                            i += 1;
                        }
                    }
                    _ => {
                        let mut i = 0;
                        while i + $lanes <= n {
                            let mut p = vv;
                            for row in rows {
                                debug_assert!(row.len() >= n);
                                p = $mul(p, $loadu(row.as_ptr().add(i)));
                            }
                            $storeu(out.as_mut_ptr().add(i), p);
                            i += $lanes;
                        }
                        while i < n {
                            let mut p = val;
                            for row in rows {
                                p *= *row.get_unchecked(i);
                            }
                            *out.get_unchecked_mut(i) = p;
                            i += 1;
                        }
                    }
                }
            }

            /// Whole-block fused MTTKRP body for order-3 blocked tensors:
            /// `out[em[z]][i] += vals[z - z0] * fa[ea[z]][i] * fb[eb[z]][i]`
            /// for every nonzero `z` of one HiCOO/vb-HiCOO block. Keeping
            /// the nonzero loop *inside* the target-feature region amortizes
            /// the uninlinable dispatched call over the whole block instead
            /// of paying it per nonzero. Nonzeros are visited in ascending
            /// `z` and each element's product order is `val`, factor rows in
            /// mode order, then a separate add — identical to the scratch
            /// flow, so results stay bitwise-equal to the scalar backend.
            ///
            /// # Safety
            /// Requires AVX2. `vals` holds the block's values (indexed from
            /// `zs.start`), `em`/`ea`/`eb` are element offsets indexed by
            /// `z`, `fa`/`fb` are row-major factor data with `r` columns,
            /// and every derived row/output range must be in bounds.
            #[target_feature(enable = "avx2")]
            #[allow(clippy::too_many_arguments)]
            pub unsafe fn $block3(
                out: &mut [$t],
                row_base: usize,
                r: usize,
                vals: &[$t],
                zs: core::ops::Range<usize>,
                em: &[u8],
                base_m: usize,
                fa: &[$t],
                ea: &[u8],
                base_a: usize,
                fb: &[$t],
                eb: &[u8],
                base_b: usize,
            ) {
                let z0 = zs.start;
                for z in zs {
                    let val = *vals.get_unchecked(z - z0);
                    let ra = fa
                        .as_ptr()
                        .add((base_a + *ea.get_unchecked(z) as usize) * r);
                    let rb = fb
                        .as_ptr()
                        .add((base_b + *eb.get_unchecked(z) as usize) * r);
                    let d = out
                        .as_mut_ptr()
                        .add((base_m + *em.get_unchecked(z) as usize - row_base) * r);
                    let vv = $set1(val);
                    let mut i = 0;
                    while i + $lanes <= r {
                        let p = $mul($mul(vv, $loadu(ra.add(i))), $loadu(rb.add(i)));
                        $storeu(d.add(i), $add($loadu(d.add(i)), p));
                        i += $lanes;
                    }
                    while i < r {
                        *d.add(i) += val * *ra.add(i) * *rb.add(i);
                        i += 1;
                    }
                }
            }

            /// `dst[i] = op(dst[i], s)`.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $scalar_assign(op: EwOp, dst: &mut [$t], s: $t) {
                let n = dst.len();
                let vv = $set1(s);
                let mut i = 0;
                while i + $lanes <= n {
                    let x = $loadu(dst.as_ptr().add(i));
                    let r = match op {
                        EwOp::Add => $add(x, vv),
                        EwOp::Sub => $sub(x, vv),
                        EwOp::Mul => $mul(x, vv),
                        EwOp::Div => $div(x, vv),
                    };
                    $storeu(dst.as_mut_ptr().add(i), r);
                    i += $lanes;
                }
                while i < n {
                    let d = dst.get_unchecked_mut(i);
                    *d = op.apply(*d, s);
                    i += 1;
                }
            }
        };
    }

    avx2_family!(
        f32,
        8,
        __m256,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_add_ps,
        _mm256_sub_ps,
        _mm256_mul_ps,
        _mm256_div_ps,
        mul_assign_f32,
        add_assign_f32,
        axpy_f32,
        combine_into_f32,
        combine_assign_f32,
        scalar_into_f32,
        scalar_assign_f32,
        accum_rows_f32,
        product_rows_f32,
        mttkrp_block3_f32
    );
    avx2_family!(
        f64,
        4,
        __m256d,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_add_pd,
        _mm256_sub_pd,
        _mm256_mul_pd,
        _mm256_div_pd,
        mul_assign_f64,
        add_assign_f64,
        axpy_f64,
        combine_into_f64,
        combine_assign_f64,
        scalar_into_f64,
        scalar_assign_f64,
        accum_rows_f64,
        product_rows_f64,
        mttkrp_block3_f64
    );
}

// ---------------------------------------------------------------------------
// Public slice primitives: dispatch on backend, then (for Simd) on scalar
// type + AVX2 availability. The portable Simd path is the scalar loop,
// which is bitwise-identical because every vector op is lane-wise.
// ---------------------------------------------------------------------------

macro_rules! dispatch_binary {
    ($backend:expr, $dst:expr, $src:expr, $scalar:expr,
     $f32fn:ident, $f64fn:ident $(, $extra:expr)*) => {{
        match $backend {
            KernelBackend::Scalar => $scalar,
            KernelBackend::Simd => {
                #[cfg(target_arch = "x86_64")]
                {
                    if avx2_available() {
                        if let (Some(d), Some(s)) =
                            (downcast_mut::<_, f32>($dst), downcast_ref::<_, f32>($src))
                        {
                            // Safety: AVX2 presence checked above.
                            unsafe { avx2::$f32fn($($extra,)* d, s) };
                            return;
                        }
                        if let (Some(d), Some(s)) =
                            (downcast_mut::<_, f64>($dst), downcast_ref::<_, f64>($src))
                        {
                            // Safety: AVX2 presence checked above.
                            unsafe { avx2::$f64fn($($extra,)* d, s) };
                            return;
                        }
                    }
                }
                // Portable lane path: same element order, same roundings.
                $scalar
            }
        }
    }};
}

/// `dst[i] *= src[i]` for `i in 0..dst.len()` (the Hadamard step of the
/// MTTKRP rank loop). `src` must be at least as long as `dst`.
pub fn mul_assign<S: Scalar>(backend: KernelBackend, dst: &mut [S], src: &[S]) {
    #[inline(always)]
    fn scalar_path<S: Scalar>(dst: &mut [S], src: &[S]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d *= s;
        }
    }
    dispatch_binary!(
        backend,
        dst,
        src,
        scalar_path(dst, src),
        mul_assign_f32,
        mul_assign_f64
    )
}

/// `dst[i] += src[i]` (the accumulate step of MTTKRP into an output row).
pub fn add_assign<S: Scalar>(backend: KernelBackend, dst: &mut [S], src: &[S]) {
    #[inline(always)]
    fn scalar_path<S: Scalar>(dst: &mut [S], src: &[S]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
    dispatch_binary!(
        backend,
        dst,
        src,
        scalar_path(dst, src),
        add_assign_f32,
        add_assign_f64
    )
}

/// `dst[i] += src[i] * v` (the TTM stripe update). Mul-then-add with two
/// roundings, matching the scalar loop — never FMA.
pub fn axpy<S: Scalar>(backend: KernelBackend, dst: &mut [S], src: &[S], v: S) {
    #[inline(always)]
    fn scalar_path<S: Scalar>(dst: &mut [S], src: &[S], v: S) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s * v;
        }
    }
    match backend {
        KernelBackend::Scalar => scalar_path(dst, src, v),
        KernelBackend::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx2_available() {
                    if let (Some(d), Some(s), Some(x)) = (
                        downcast_mut::<_, f32>(dst),
                        downcast_ref::<_, f32>(src),
                        downcast_val::<_, f32>(v),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::axpy_f32(d, s, x) };
                        return;
                    }
                    if let (Some(d), Some(s), Some(x)) = (
                        downcast_mut::<_, f64>(dst),
                        downcast_ref::<_, f64>(src),
                        downcast_val::<_, f64>(v),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::axpy_f64(d, s, x) };
                        return;
                    }
                }
            }
            scalar_path(dst, src, v)
        }
    }
}

/// `dst[i] += val * rows[0][i] * rows[1][i] * ...` — the fused per-nonzero
/// MTTKRP body: one dispatched call covers the whole rank loop instead of a
/// `fill` + per-factor `mul_assign` + `add_assign` sequence. The `rows`
/// slice holds the non-mode factor rows in mode order; the per-element
/// product order (`val`, then rows in slice order, then a separate add) is
/// exactly the scratch flow's, so both backends stay bitwise-identical.
pub fn accum_rows<S: Scalar>(backend: KernelBackend, dst: &mut [S], val: S, rows: &[&[S]]) {
    #[inline(always)]
    fn scalar_path<S: Scalar>(dst: &mut [S], val: S, rows: &[&[S]]) {
        match rows {
            [a] => {
                for (d, &x) in dst.iter_mut().zip(a.iter()) {
                    *d += val * x;
                }
            }
            [a, b] => {
                let n = dst.len();
                let (a, b) = (&a[..n], &b[..n]);
                for i in 0..n {
                    dst[i] += val * a[i] * b[i];
                }
            }
            [a, b, c] => {
                let n = dst.len();
                let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
                for i in 0..n {
                    dst[i] += val * a[i] * b[i] * c[i];
                }
            }
            _ => {
                for (i, d) in dst.iter_mut().enumerate() {
                    let mut p = val;
                    for row in rows {
                        p *= row[i];
                    }
                    *d += p;
                }
            }
        }
    }
    match backend {
        KernelBackend::Scalar => scalar_path(dst, val, rows),
        KernelBackend::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx2_available() {
                    if let (Some(d), Some(v), Some(r)) = (
                        downcast_mut::<_, f32>(dst),
                        downcast_val::<_, f32>(val),
                        downcast_rows::<_, f32>(rows),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::accum_rows_f32(d, v, r) };
                        return;
                    }
                    if let (Some(d), Some(v), Some(r)) = (
                        downcast_mut::<_, f64>(dst),
                        downcast_val::<_, f64>(val),
                        downcast_rows::<_, f64>(rows),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::accum_rows_f64(d, v, r) };
                        return;
                    }
                }
            }
            scalar_path(dst, val, rows)
        }
    }
}

/// `out[i] = val * rows[0][i] * rows[1][i] * ...` — product-only variant of
/// [`accum_rows`] for strategies whose combine step is atomic or lock-guarded
/// (the product lands in a scratch row first). Same per-element order.
pub fn product_rows<S: Scalar>(backend: KernelBackend, out: &mut [S], val: S, rows: &[&[S]]) {
    #[inline(always)]
    fn scalar_path<S: Scalar>(out: &mut [S], val: S, rows: &[&[S]]) {
        match rows {
            [a] => {
                for (o, &x) in out.iter_mut().zip(a.iter()) {
                    *o = val * x;
                }
            }
            [a, b] => {
                let n = out.len();
                let (a, b) = (&a[..n], &b[..n]);
                for i in 0..n {
                    out[i] = val * a[i] * b[i];
                }
            }
            [a, b, c] => {
                let n = out.len();
                let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
                for i in 0..n {
                    out[i] = val * a[i] * b[i] * c[i];
                }
            }
            _ => {
                for (i, o) in out.iter_mut().enumerate() {
                    let mut p = val;
                    for row in rows {
                        p *= row[i];
                    }
                    *o = p;
                }
            }
        }
    }
    match backend {
        KernelBackend::Scalar => scalar_path(out, val, rows),
        KernelBackend::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx2_available() {
                    if let (Some(o), Some(v), Some(r)) = (
                        downcast_mut::<_, f32>(out),
                        downcast_val::<_, f32>(val),
                        downcast_rows::<_, f32>(rows),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::product_rows_f32(o, v, r) };
                        return;
                    }
                    if let (Some(o), Some(v), Some(r)) = (
                        downcast_mut::<_, f64>(out),
                        downcast_val::<_, f64>(val),
                        downcast_rows::<_, f64>(rows),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::product_rows_f64(o, v, r) };
                        return;
                    }
                }
            }
            scalar_path(out, val, rows)
        }
    }
}

/// Whole-block fused MTTKRP body for order-3 blocked layouts (HiCOO /
/// vb-HiCOO): for every nonzero `z` in `zs`,
/// `out[base_m + em[z] - row_base][i] += vals[z - zs.start] * fa_row[i] * fb_row[i]`
/// where `fa_row`/`fb_row` are the factor rows `base_a + ea[z]` /
/// `base_b + eb[z]` of the row-major matrices `fa`/`fb` (each `r` columns).
///
/// One dispatched call covers the whole block, so the uninlinable
/// `#[target_feature]` boundary is crossed once per block instead of once
/// per nonzero. Nonzeros are visited in ascending `z` and each element's
/// product order matches the scratch flow (`val`, rows in mode order, then
/// a separate add), so both backends stay bitwise-identical.
#[allow(clippy::too_many_arguments)]
pub fn mttkrp_block3<S: Scalar>(
    backend: KernelBackend,
    out: &mut [S],
    row_base: usize,
    r: usize,
    vals: &[S],
    zs: std::ops::Range<usize>,
    em: &[u8],
    base_m: usize,
    fa: &[S],
    ea: &[u8],
    base_a: usize,
    fb: &[S],
    eb: &[u8],
    base_b: usize,
) {
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn scalar_path<S: Scalar>(
        out: &mut [S],
        row_base: usize,
        r: usize,
        vals: &[S],
        zs: std::ops::Range<usize>,
        em: &[u8],
        base_m: usize,
        fa: &[S],
        ea: &[u8],
        base_a: usize,
        fb: &[S],
        eb: &[u8],
        base_b: usize,
    ) {
        let z0 = zs.start;
        for z in zs {
            let val = vals[z - z0];
            let ra = &fa[(base_a + ea[z] as usize) * r..][..r];
            let rb = &fb[(base_b + eb[z] as usize) * r..][..r];
            let d = &mut out[(base_m + em[z] as usize - row_base) * r..][..r];
            for i in 0..r {
                d[i] += val * ra[i] * rb[i];
            }
        }
    }
    match backend {
        KernelBackend::Scalar => scalar_path(
            out, row_base, r, vals, zs, em, base_m, fa, ea, base_a, fb, eb, base_b,
        ),
        KernelBackend::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx2_available() {
                    if let (Some(o), Some(v), Some(a), Some(b)) = (
                        downcast_mut::<_, f32>(out),
                        downcast_ref::<_, f32>(vals),
                        downcast_ref::<_, f32>(fa),
                        downcast_ref::<_, f32>(fb),
                    ) {
                        // Safety: AVX2 presence checked above; slice bounds
                        // are the caller's (checked) block invariants.
                        unsafe {
                            avx2::mttkrp_block3_f32(
                                o,
                                row_base,
                                r,
                                v,
                                zs.clone(),
                                em,
                                base_m,
                                a,
                                ea,
                                base_a,
                                b,
                                eb,
                                base_b,
                            )
                        };
                        return;
                    }
                    if let (Some(o), Some(v), Some(a), Some(b)) = (
                        downcast_mut::<_, f64>(out),
                        downcast_ref::<_, f64>(vals),
                        downcast_ref::<_, f64>(fa),
                        downcast_ref::<_, f64>(fb),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe {
                            avx2::mttkrp_block3_f64(
                                o,
                                row_base,
                                r,
                                v,
                                zs.clone(),
                                em,
                                base_m,
                                a,
                                ea,
                                base_a,
                                b,
                                eb,
                                base_b,
                            )
                        };
                        return;
                    }
                }
            }
            scalar_path(
                out, row_base, r, vals, zs, em, base_m, fa, ea, base_a, fb, eb, base_b,
            )
        }
    }
}

/// `out[i] = op(a[i], b[i])` (same-pattern TEW body).
pub fn ew_combine_into<S: Scalar>(
    backend: KernelBackend,
    op: EwOp,
    a: &[S],
    b: &[S],
    out: &mut [S],
) {
    #[inline(always)]
    fn scalar_path<S: Scalar>(op: EwOp, a: &[S], b: &[S], out: &mut [S]) {
        for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
            *o = op.apply(x, y);
        }
    }
    match backend {
        KernelBackend::Scalar => scalar_path(op, a, b, out),
        KernelBackend::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx2_available() {
                    if let (Some(x), Some(y), Some(o)) = (
                        downcast_ref::<_, f32>(a),
                        downcast_ref::<_, f32>(b),
                        downcast_mut::<_, f32>(out),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::combine_into_f32(op, x, y, o) };
                        return;
                    }
                    if let (Some(x), Some(y), Some(o)) = (
                        downcast_ref::<_, f64>(a),
                        downcast_ref::<_, f64>(b),
                        downcast_mut::<_, f64>(out),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::combine_into_f64(op, x, y, o) };
                        return;
                    }
                }
            }
            scalar_path(op, a, b, out)
        }
    }
}

/// `dst[i] = op(dst[i], src[i])` (in-place TEW over HiCOO values).
pub fn ew_combine_assign<S: Scalar>(backend: KernelBackend, op: EwOp, dst: &mut [S], src: &[S]) {
    #[inline(always)]
    fn scalar_path<S: Scalar>(op: EwOp, dst: &mut [S], src: &[S]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = op.apply(*d, s);
        }
    }
    dispatch_binary!(
        backend,
        dst,
        src,
        scalar_path(op, dst, src),
        combine_assign_f32,
        combine_assign_f64,
        op
    )
}

/// `out[i] = op(src[i], s)` (TS body).
pub fn ew_scalar_into<S: Scalar>(backend: KernelBackend, op: EwOp, src: &[S], s: S, out: &mut [S]) {
    #[inline(always)]
    fn scalar_path<S: Scalar>(op: EwOp, src: &[S], s: S, out: &mut [S]) {
        for (o, &x) in out.iter_mut().zip(src) {
            *o = op.apply(x, s);
        }
    }
    match backend {
        KernelBackend::Scalar => scalar_path(op, src, s, out),
        KernelBackend::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx2_available() {
                    if let (Some(x), Some(v), Some(o)) = (
                        downcast_ref::<_, f32>(src),
                        downcast_val::<_, f32>(s),
                        downcast_mut::<_, f32>(out),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::scalar_into_f32(op, x, v, o) };
                        return;
                    }
                    if let (Some(x), Some(v), Some(o)) = (
                        downcast_ref::<_, f64>(src),
                        downcast_val::<_, f64>(s),
                        downcast_mut::<_, f64>(out),
                    ) {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::scalar_into_f64(op, x, v, o) };
                        return;
                    }
                }
            }
            scalar_path(op, src, s, out)
        }
    }
}

/// `dst[i] = op(dst[i], s)` (in-place TS).
pub fn ew_scalar_assign<S: Scalar>(backend: KernelBackend, op: EwOp, dst: &mut [S], s: S) {
    #[inline(always)]
    fn scalar_path<S: Scalar>(op: EwOp, dst: &mut [S], s: S) {
        for d in dst.iter_mut() {
            *d = op.apply(*d, s);
        }
    }
    match backend {
        KernelBackend::Scalar => scalar_path(op, dst, s),
        KernelBackend::Simd => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx2_available() {
                    if let (Some(d), Some(v)) =
                        (downcast_mut::<_, f32>(dst), downcast_val::<_, f32>(s))
                    {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::scalar_assign_f32(op, d, v) };
                        return;
                    }
                    if let (Some(d), Some(v)) =
                        (downcast_mut::<_, f64>(dst), downcast_val::<_, f64>(s))
                    {
                        // Safety: AVX2 presence checked above.
                        unsafe { avx2::scalar_assign_f64(op, d, v) };
                        return;
                    }
                }
            }
            scalar_path(op, dst, s)
        }
    }
}

/// Ordered fiber dot product: `sum_m vals[m] * table[idx[m]]` with the
/// accumulation performed in index order (the TTV inner loop).
///
/// The Simd path gathers table entries chunk-wise, forms the products with
/// a vector multiply (one rounding each, identical to the scalar path),
/// then accumulates the products serially **in the original order** — so
/// the result is bitwise identical to the scalar loop.
pub fn fiber_dot<S: Scalar>(backend: KernelBackend, vals: &[S], idx: &[u32], table: &[S]) -> S {
    debug_assert_eq!(vals.len(), idx.len());
    match backend {
        KernelBackend::Scalar => {
            let mut acc = S::ZERO;
            for (m, &v) in vals.iter().enumerate() {
                acc += v * table[idx[m] as usize];
            }
            acc
        }
        KernelBackend::Simd => {
            const CHUNK: usize = 64;
            let mut buf = [S::ZERO; CHUNK];
            let mut acc = S::ZERO;
            for (vch, ich) in vals.chunks(CHUNK).zip(idx.chunks(CHUNK)) {
                let b = &mut buf[..vch.len()];
                for (slot, &j) in b.iter_mut().zip(ich) {
                    *slot = table[j as usize];
                }
                mul_assign(backend, b, vch);
                for &p in b.iter() {
                    acc += p;
                }
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that mutate the process-wide forced backend must not overlap.
    static FORCE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn xs(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32).sin() * 3.0 + 0.25).collect()
    }
    fn ys(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32).cos() * 2.0 - 0.5).collect()
    }
    fn xd(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64).sin() * 3.0 + 0.25).collect()
    }

    #[test]
    fn parse_choices() {
        assert_eq!(BackendChoice::parse("auto"), Some(BackendChoice::Auto));
        assert_eq!(BackendChoice::parse(" SIMD "), Some(BackendChoice::Simd));
        assert_eq!(BackendChoice::parse("Scalar"), Some(BackendChoice::Scalar));
        assert_eq!(BackendChoice::parse("avx512"), None);
        assert_eq!(KernelBackend::Simd.name(), "simd");
    }

    #[test]
    fn lane_geometry() {
        assert_eq!(lanes::<f32>(), 8);
        assert_eq!(lanes::<f64>(), 4);
        assert_eq!(pad_unit::<f32>(), 16);
        assert_eq!(pad_unit::<f64>(), 8);
    }

    #[test]
    fn forced_override_outranks_env() {
        let _guard = FORCE_LOCK.lock().unwrap();
        force_backend(Some(BackendChoice::Scalar));
        assert_eq!(current_backend(), KernelBackend::Scalar);
        force_backend(Some(BackendChoice::Simd));
        assert_eq!(current_backend(), KernelBackend::Simd);
        force_backend(None);
        let _ = current_backend(); // whatever env/auto resolves to
    }

    // Every primitive must be *bitwise* identical across backends on all
    // lengths around the lane boundaries (tails of every size).
    #[test]
    fn binary_primitives_bitwise_match() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 17, 33, 64, 100] {
            let a = xs(n);
            let b = ys(n);
            for op in [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div] {
                let mut o1 = vec![0.0f32; n];
                let mut o2 = vec![0.0f32; n];
                ew_combine_into(KernelBackend::Scalar, op, &a, &b, &mut o1);
                ew_combine_into(KernelBackend::Simd, op, &a, &b, &mut o2);
                assert_eq!(
                    o1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    o2.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "ew_combine_into {op:?} n={n}"
                );
                let (mut d1, mut d2) = (a.clone(), a.clone());
                ew_combine_assign(KernelBackend::Scalar, op, &mut d1, &b);
                ew_combine_assign(KernelBackend::Simd, op, &mut d2, &b);
                assert_eq!(d1, d2, "ew_combine_assign {op:?} n={n}");
                let (mut s1, mut s2) = (a.clone(), a.clone());
                ew_scalar_assign(KernelBackend::Scalar, op, &mut s1, 1.5);
                ew_scalar_assign(KernelBackend::Simd, op, &mut s2, 1.5);
                assert_eq!(s1, s2, "ew_scalar_assign {op:?} n={n}");
            }
            let (mut m1, mut m2) = (a.clone(), a.clone());
            mul_assign(KernelBackend::Scalar, &mut m1, &b);
            mul_assign(KernelBackend::Simd, &mut m2, &b);
            assert_eq!(m1, m2, "mul_assign n={n}");
            let (mut p1, mut p2) = (a.clone(), a.clone());
            add_assign(KernelBackend::Scalar, &mut p1, &b);
            add_assign(KernelBackend::Simd, &mut p2, &b);
            assert_eq!(p1, p2, "add_assign n={n}");
            let (mut y1, mut y2) = (a.clone(), a.clone());
            axpy(KernelBackend::Scalar, &mut y1, &b, 0.75);
            axpy(KernelBackend::Simd, &mut y2, &b, 0.75);
            assert_eq!(
                y1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                y2.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "axpy n={n}"
            );
        }
    }

    #[test]
    fn f64_primitives_bitwise_match() {
        for n in [1usize, 3, 4, 5, 11, 16] {
            let a = xd(n);
            let b: Vec<f64> = a.iter().map(|x| x * 1.3 - 0.1).collect();
            let (mut m1, mut m2) = (a.clone(), a.clone());
            mul_assign(KernelBackend::Scalar, &mut m1, &b);
            mul_assign(KernelBackend::Simd, &mut m2, &b);
            assert_eq!(m1, m2);
            let (mut y1, mut y2) = (a.clone(), a.clone());
            axpy(KernelBackend::Scalar, &mut y1, &b, -2.5);
            axpy(KernelBackend::Simd, &mut y2, &b, -2.5);
            assert_eq!(
                y1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                y2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            let mut o1 = vec![0.0f64; n];
            let mut o2 = vec![0.0f64; n];
            ew_scalar_into(KernelBackend::Scalar, EwOp::Div, &a, 3.0, &mut o1);
            ew_scalar_into(KernelBackend::Simd, EwOp::Div, &a, 3.0, &mut o2);
            assert_eq!(o1, o2);
        }
    }

    #[test]
    fn fiber_dot_bitwise_matches_scalar_order() {
        for n in [0usize, 1, 7, 63, 64, 65, 200] {
            let vals = xs(n);
            let table = ys(97);
            let idx: Vec<u32> = (0..n)
                .map(|i| ((i * 13 + 5) % table.len()) as u32)
                .collect();
            let a = fiber_dot(KernelBackend::Scalar, &vals, &idx, &table);
            let b = fiber_dot(KernelBackend::Simd, &vals, &idx, &table);
            assert_eq!(a.to_bits(), b.to_bits(), "fiber_dot n={n}");
        }
    }

    #[test]
    fn div_by_zero_matches_ieee_in_both_backends() {
        let a = vec![1.0f32, -1.0, 0.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let b = vec![0.0f32; 9];
        let mut o1 = vec![0.0f32; 9];
        let mut o2 = vec![0.0f32; 9];
        ew_combine_into(KernelBackend::Scalar, EwOp::Div, &a, &b, &mut o1);
        ew_combine_into(KernelBackend::Simd, EwOp::Div, &a, &b, &mut o2);
        assert_eq!(
            o1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            o2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert!(o1[0].is_infinite() && o1[2].is_nan());
    }

    #[test]
    fn note_dispatch_charges_counters() {
        use tenbench_obs::counters;
        let _guard = FORCE_LOCK.lock().unwrap();
        let _scope = counters::counters_scope();
        // `>=` rather than `==`: enabling the global counter flag makes any
        // concurrently-running kernel test charge these counters too.
        let simd0 = counters::BACKEND_SIMD_CALLS.get();
        let fall0 = counters::BACKEND_SCALAR_FALLBACKS.get();
        note_dispatch(KernelBackend::Simd);
        assert!(counters::BACKEND_SIMD_CALLS.get() > simd0);
        // Scalar dispatch counts as a fallback only while Simd is preferred.
        force_backend(Some(BackendChoice::Simd));
        note_dispatch(KernelBackend::Scalar);
        assert!(counters::BACKEND_SCALAR_FALLBACKS.get() > fall0);
        force_backend(None);
    }
}
