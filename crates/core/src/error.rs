//! Error type shared by every format and kernel in the suite.

use std::fmt;

/// Convenience alias used throughout `tenbench`.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction, conversion, and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two tensors were expected to have the same shape.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<u32>,
        /// Shape of the right operand.
        right: Vec<u32>,
    },
    /// Two tensors were expected to have the same order (number of modes).
    OrderMismatch {
        /// Order of the left operand.
        left: usize,
        /// Order of the right operand.
        right: usize,
    },
    /// A mode argument was `>=` the tensor order.
    ModeOutOfRange {
        /// The offending mode.
        mode: usize,
        /// The tensor order.
        order: usize,
    },
    /// A coordinate was outside the tensor shape.
    IndexOutOfBounds {
        /// Mode in which the violation happened.
        mode: usize,
        /// The offending index.
        index: u32,
        /// The dimension size of that mode.
        dim: u32,
    },
    /// An operand (vector or matrix) had the wrong length for the mode it
    /// multiplies.
    OperandLengthMismatch {
        /// Expected length (the dimension of the contracted mode).
        expected: usize,
        /// Actual operand length.
        actual: usize,
    },
    /// The two tensors of a same-pattern element-wise operation did not have
    /// identical nonzero patterns.
    PatternMismatch,
    /// A tensor had zero order; the suite requires order >= 1 (>= 2 for some
    /// kernels such as Ttv whose output drops a mode).
    OrderTooSmall {
        /// Minimum supported order for the operation.
        min: usize,
        /// Actual order.
        actual: usize,
    },
    /// HiCOO block size out of range: element indices are stored in 8 bits,
    /// so `block_bits` must be in `1..=8`.
    InvalidBlockBits(u8),
    /// The requested gHiCOO compression plan did not match the tensor order.
    InvalidCompressionPlan {
        /// Number of per-mode flags supplied.
        flags: usize,
        /// Tensor order.
        order: usize,
    },
    /// A structural invariant of a format was violated (used by validators).
    InvalidStructure(String),
    /// Mttkrp was given the wrong number of factor matrices, or a factor had
    /// the wrong number of rows or columns.
    FactorMismatch(String),
    /// Division by a zero value was attempted in an element-wise kernel.
    DivisionByZero,
    /// An arithmetic overflow while computing sizes (tensor too large).
    SizeOverflow,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::OrderMismatch { left, right } => {
                write!(f, "order mismatch: {left} vs {right}")
            }
            TensorError::ModeOutOfRange { mode, order } => {
                write!(f, "mode {mode} out of range for order-{order} tensor")
            }
            TensorError::IndexOutOfBounds { mode, index, dim } => {
                write!(
                    f,
                    "index {index} out of bounds for mode {mode} of size {dim}"
                )
            }
            TensorError::OperandLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "operand length {actual} does not match mode size {expected}"
                )
            }
            TensorError::PatternMismatch => {
                write!(f, "tensors do not share a nonzero pattern")
            }
            TensorError::OrderTooSmall { min, actual } => {
                write!(
                    f,
                    "tensor order {actual} below minimum {min} for this operation"
                )
            }
            TensorError::InvalidBlockBits(b) => {
                write!(f, "block_bits {b} outside supported range 1..=8")
            }
            TensorError::InvalidCompressionPlan { flags, order } => {
                write!(
                    f,
                    "compression plan has {flags} flags for order-{order} tensor"
                )
            }
            TensorError::InvalidStructure(msg) => write!(f, "invalid structure: {msg}"),
            TensorError::FactorMismatch(msg) => write!(f, "factor mismatch: {msg}"),
            TensorError::DivisionByZero => write!(f, "division by zero"),
            TensorError::SizeOverflow => write!(f, "size computation overflowed"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![2, 4],
        };
        let s = e.to_string();
        assert!(s.contains("[2, 3]") && s.contains("[2, 4]"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TensorError::PatternMismatch);
    }

    #[test]
    fn mode_out_of_range_mentions_both() {
        let e = TensorError::ModeOutOfRange { mode: 5, order: 3 };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
    }
}
