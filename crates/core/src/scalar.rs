//! Scalar abstraction over the value types supported by the suite.
//!
//! The paper reports single-precision results; the suite defaults to `f32`
//! but every format and kernel is generic over [`Scalar`], so `f64` runs are
//! a type parameter away.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::atomic::{AtomicF32, AtomicF64, AtomicScalar};

/// Floating-point value type usable in all tensor formats and kernels.
///
/// Implemented for `f32` and `f64`. The associated [`Scalar::Atomic`] type
/// provides the lock-free accumulation used by the parallel Mttkrp kernels
/// (the Rust analogue of the paper's `omp atomic` / CUDA `atomicAdd`).
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Default
    + Sum
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + 'static
{
    /// Atomic cell with the same layout as `Self`, supporting `fetch_add`.
    type Atomic: AtomicScalar<Value = Self>;

    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of one value in bytes (4 for `f32`, 8 for `f64`); used by the
    /// memory-traffic accounting of Table 1.
    const BYTES: u64;

    /// Lossy conversion from `f64` (used by generators and examples).
    fn from_f64(x: f64) -> Self;
    /// Lossy conversion to `f64` (used by analysis and error norms).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root (used by the CP-ALS fit computation).
    fn sqrt(self) -> Self;
    /// `true` if the value is finite (not NaN or infinity).
    fn is_finite(self) -> bool;

    /// Reinterpret a mutable value slice as a slice of atomic cells.
    ///
    /// This is the idiom behind the parallel Mttkrp: the output matrix is a
    /// plain `Vec<S>` owned by one thread before and after the kernel, and is
    /// viewed atomically only for the duration of the parallel region.
    fn as_atomic_slice(slice: &mut [Self]) -> &[Self::Atomic] {
        Self::Atomic::from_mut_slice(slice)
    }
}

impl Scalar for f32 {
    type Atomic = AtomicF32;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: u64 = 4;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Scalar for f64 {
    type Atomic = AtomicF64;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: u64 = 8;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// Relative comparison helper used by tests: `|a - b| <= tol * max(1, |a|, |b|)`.
pub fn approx_eq<S: Scalar>(a: S, b: S, tol: f64) -> bool {
    let (a, b) = (a.to_f64(), b.to_f64());
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_round_trip() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0f32);
        assert_eq!(f64::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1.0e6f32, 1.0e6 + 0.5, 1e-6));
        assert!(!approx_eq(1.0f32, 1.1, 1e-6));
    }

    #[test]
    fn atomic_view_accumulates() {
        let mut v = vec![0.0f32; 4];
        {
            let cells = f32::as_atomic_slice(&mut v);
            cells[1].fetch_add(2.0);
            cells[1].fetch_add(3.0);
        }
        assert_eq!(v, vec![0.0, 5.0, 0.0, 0.0]);
    }
}
