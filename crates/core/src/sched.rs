//! Output-aware, conflict-free block schedules for HiCOO/COO kernels.
//!
//! The paper's reference Mttkrp parallelizes over nonzeros (COO) or blocks
//! (HiCOO) and protects the shared output with atomics — the scalability
//! bottleneck it flags on contended modes. Partitioning the *work* by
//! *output* index removes the synchronization entirely: if every parallel
//! task owns all the nonzeros that write a given output row range, the
//! inner loops write plain `&mut` rows with zero atomics and zero locks,
//! and the fixed accumulation order makes results bitwise-deterministic
//! across runs.
//!
//! Three schedule flavors cover the suite's kernels:
//!
//! * [`ModeSchedule`] — HiCOO blocks grouped by their mode-`n` block index
//!   (`block_ind(b, n)`). All blocks writing the same output row block land
//!   in the same group; groups are packed into nnz-balanced tasks. Used by
//!   scheduled HiCOO-Mttkrp.
//! * [`RowSchedule`] — COO nonzeros permuted (stable counting sort) so each
//!   output row's nonzeros are contiguous; rows are packed into
//!   nnz-balanced tasks. Used by [`crate::kernels::mttkrp::MttkrpStrategy::Scheduled`].
//! * [`ComplementSchedule`] — HiCOO blocks grouped by the block coordinates
//!   of every mode *except* `n`. Each group is exactly one output block of
//!   a mode-`n` contraction, so scheduled Ttv/Ttm assemble their sparse
//!   outputs group-by-group with no re-blocking conversion and no races.
//!
//! Schedules depend only on the sparsity structure, not the values, so they
//! are built once and reused across kernel invocations — a global cache
//! keyed by `(tensor identity, mode, threads)` makes reuse automatic (see
//! [`mode_schedule`] / [`complement_schedule`] / [`row_schedule`]).
//! Construction is `O(nnz + n_b log n_b)` and the schedule stores ~8 bytes
//! per block (plus 4 bytes per nonzero for [`RowSchedule`]).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rayon::prelude::*;

use crate::coo::CooTensor;
use crate::hicoo::HicooTensor;
use crate::par::current_threads;
use crate::scalar::Scalar;

/// How many tasks to aim for per worker thread; more tasks means better
/// dynamic load balance at slightly higher scheduling overhead.
const TASKS_PER_THREAD: usize = 8;

/// Pack nnz-balanced task boundaries over `groups` weighted by `weight`.
/// Returns `tptr` with `tptr[t]..tptr[t+1]` the group range of task `t`;
/// tasks never split a group (that would reintroduce write conflicts).
fn balance_tasks(weights: &[u64], threads: usize) -> Vec<u32> {
    balance_tasks_by(weights.len(), |g| weights[g], threads)
}

/// [`balance_tasks`] over a weight function, so callers whose weights are
/// already derivable from an existing structure (e.g. adjacent `rptr`
/// differences) don't materialize an 8-bytes-per-group scratch array.
fn balance_tasks_by(ngroups: usize, weight: impl Fn(usize) -> u64, threads: usize) -> Vec<u32> {
    if ngroups == 0 {
        return vec![0];
    }
    let total: u64 = (0..ngroups).map(&weight).sum();
    let ntasks = (threads.max(1) * TASKS_PER_THREAD).min(ngroups).max(1);
    let target = total.div_ceil(ntasks as u64).max(1);
    let mut tptr = Vec::with_capacity(ntasks + 1);
    tptr.push(0u32);
    let mut acc = 0u64;
    for g in 0..ngroups {
        acc += weight(g);
        if acc >= target && g + 1 < ngroups {
            tptr.push((g + 1) as u32);
            acc = 0;
        }
    }
    tptr.push(ngroups as u32);
    tptr
}

/// Output-partitioned block schedule for one mode of a HiCOO tensor.
///
/// Blocks are grouped by `block_ind(b, mode)`; groups are sorted by that
/// output block index (ascending) and packed into contiguous, nnz-balanced
/// tasks. Distinct tasks therefore own disjoint, ascending output row
/// ranges — the property scheduled kernels exploit to hand each task a
/// plain `&mut` sub-slice of the output.
#[derive(Debug, Clone)]
pub struct ModeSchedule {
    mode: usize,
    threads: usize,
    block_bits: u8,
    /// Permuted block ids: group `g` is `blocks[gptr[g]..gptr[g+1]]`, block
    /// ids ascending within a group (deterministic accumulation order).
    blocks: Vec<u32>,
    /// Group boundaries into `blocks` (`num_groups + 1` entries).
    gptr: Vec<u32>,
    /// Mode-`n` block index per group, strictly ascending.
    out_block: Vec<u32>,
    /// Task boundaries into groups (`num_tasks + 1` entries).
    tptr: Vec<u32>,
    nnz: u64,
}

impl ModeSchedule {
    /// Build a schedule from the mode-`n` block index array and the block
    /// pointer of a HiCOO tensor.
    pub fn build(
        binds_mode: &[u32],
        bptr: &[u64],
        block_bits: u8,
        mode: usize,
        threads: usize,
    ) -> Self {
        let nb = binds_mode.len();
        // Sort (output block, block id) pairs packed into u64: the id in the
        // low bits keeps blocks ascending within each group.
        let mut keyed: Vec<u64> = (0..nb)
            .map(|b| ((binds_mode[b] as u64) << 32) | b as u64)
            .collect();
        keyed.sort_unstable();

        let mut blocks = Vec::with_capacity(nb);
        let mut gptr = vec![0u32];
        let mut out_block = Vec::new();
        let mut weights: Vec<u64> = Vec::new();
        let mut prev_key = u64::MAX;
        for &k in &keyed {
            let key = k >> 32;
            let b = (k & 0xFFFF_FFFF) as usize;
            if key != prev_key {
                if !blocks.is_empty() {
                    gptr.push(blocks.len() as u32);
                }
                out_block.push(key as u32);
                weights.push(0);
                prev_key = key;
            }
            blocks.push(b as u32);
            *weights.last_mut().unwrap() += bptr[b + 1] - bptr[b];
        }
        gptr.push(blocks.len() as u32);
        if blocks.is_empty() {
            gptr = vec![0];
        }

        let tptr = balance_tasks(&weights, threads);
        ModeSchedule {
            mode,
            threads,
            block_bits,
            blocks,
            gptr,
            out_block,
            tptr,
            nnz: weights.iter().sum(),
        }
    }

    /// The mode this schedule partitions output rows of.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// The thread count the task partition was balanced for.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of distinct output row blocks (groups).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.out_block.len()
    }

    /// Number of parallel tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tptr.len() - 1
    }

    /// Total nonzeros covered by the schedule.
    #[inline]
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Group range owned by task `t`.
    #[inline]
    pub fn task_groups(&self, t: usize) -> Range<usize> {
        self.tptr[t] as usize..self.tptr[t + 1] as usize
    }

    /// Block ids of group `g`, ascending.
    #[inline]
    pub fn group_blocks(&self, g: usize) -> &[u32] {
        &self.blocks[self.gptr[g] as usize..self.gptr[g + 1] as usize]
    }

    /// Mode-`n` block index written by group `g`.
    #[inline]
    pub fn group_out_block(&self, g: usize) -> u32 {
        self.out_block[g]
    }

    /// First output row of group `g`.
    #[inline]
    pub fn group_row_base(&self, g: usize) -> usize {
        (self.out_block[g] as usize) << self.block_bits
    }

    /// Output row range written by task `t`, clamped to `rows_n`. Ranges of
    /// successive tasks are disjoint and ascending (gaps stay zero).
    pub fn task_row_range(&self, t: usize, rows_n: usize) -> Range<usize> {
        let groups = self.task_groups(t);
        if groups.is_empty() {
            return 0..0;
        }
        let lo = self.group_row_base(groups.start);
        let hi = ((self.out_block[groups.end - 1] as usize + 1) << self.block_bits).min(rows_n);
        lo.min(rows_n)..hi
    }

    /// Approximate resident size in bytes (for DESIGN.md accounting).
    pub fn storage_bytes(&self) -> usize {
        4 * (self.blocks.len() + self.gptr.len() + self.out_block.len() + self.tptr.len())
    }
}

/// Output-partitioned nonzero schedule for one mode of a COO tensor.
///
/// A stable counting sort by output row yields a permutation in which each
/// row's nonzeros are contiguous (ascending original position within a
/// row); rows are packed into contiguous, nnz-balanced tasks.
#[derive(Debug, Clone)]
pub struct RowSchedule {
    mode: usize,
    threads: usize,
    /// Permuted nonzero positions: row `i` owns `perm[rptr[i]..rptr[i+1]]`.
    perm: Vec<u32>,
    /// Row boundaries into `perm` (`rows_n + 1` entries).
    rptr: Vec<u32>,
    /// Task boundaries over rows (`num_tasks + 1` entries).
    tptr: Vec<u32>,
}

impl RowSchedule {
    /// Build from the mode-`n` index array of a COO tensor.
    pub fn build(rows: &[u32], rows_n: usize, mode: usize, threads: usize) -> Self {
        let m = rows.len();
        // Stable sort of nonzero positions by row index. The parallel LSD
        // radix engine produces exactly the permutation the old sequential
        // counting-sort scatter did (both are stable by original position).
        let mut perm: Vec<u32> = (0..m as u32).collect();
        crate::radix::sort_perm_by_u32_key(
            &mut perm,
            |p| rows[p as usize],
            (rows_n as u32).saturating_sub(1),
        );
        // Row boundaries from the sorted permutation: `rptr[i]` is the
        // first sorted position whose row is `>= i`. Each boundary range
        // is owned by exactly one sorted position, so the fill runs in
        // parallel with disjoint writes — replacing the serial
        // per-nonzero counting pass plus prefix scan that used to front
        // every schedule build.
        let mut rptr = vec![0u32; rows_n + 1];
        if m > 0 {
            struct RawPtr(*mut u32);
            unsafe impl Sync for RawPtr {}
            let out = RawPtr(rptr.as_mut_ptr());
            let out_ref = &out;
            let perm_ref = &perm;
            (0..m).into_par_iter().with_min_len(4096).for_each(|j| {
                let r = rows[perm_ref[j] as usize] as usize;
                let lo = if j == 0 {
                    0
                } else {
                    let prev = rows[perm_ref[j - 1] as usize] as usize;
                    if prev == r {
                        return;
                    }
                    prev + 1
                };
                for i in lo..=r {
                    // SAFETY: sorted rows ascend, so `(prev_row, row]`
                    // ranges are disjoint across positions and in-bounds
                    // (`row < rows_n`).
                    unsafe { out_ref.0.add(i).write(j as u32) };
                }
            });
            let last = rows[perm[m - 1] as usize] as usize;
            rptr[last + 1..].fill(m as u32);
        }
        // Balance tasks over rows weighted by their nonzero counts, read
        // straight out of rptr.
        let tptr = balance_tasks_by(rows_n, |i| (rptr[i + 1] - rptr[i]) as u64, threads);
        RowSchedule {
            mode,
            threads,
            perm,
            rptr,
            tptr,
        }
    }

    /// The mode this schedule partitions output rows of.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// The thread count the task partition was balanced for.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of parallel tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tptr.len() - 1
    }

    /// Output row range owned by task `t`.
    #[inline]
    pub fn task_rows(&self, t: usize) -> Range<usize> {
        self.tptr[t] as usize..self.tptr[t + 1] as usize
    }

    /// Positions (into the original nonzero arrays) of row `i`'s nonzeros,
    /// in ascending original order.
    #[inline]
    pub fn row_entries(&self, i: usize) -> &[u32] {
        &self.perm[self.rptr[i] as usize..self.rptr[i + 1] as usize]
    }
}

/// Complement-key block schedule: blocks grouped by the block coordinates
/// of every mode except `mode`.
///
/// Each group is exactly one output block of a mode-`n` contraction (Ttv,
/// Ttm): within a group the blocks differ only in their mode-`n` block
/// index, so their nonzeros fold into the same output fibers. Groups are
/// sorted lexicographically by complement coordinates; block ids ascend
/// within a group, fixing the accumulation order.
#[derive(Debug, Clone)]
pub struct ComplementSchedule {
    mode: usize,
    /// Permuted block ids: group `g` is `blocks[gptr[g]..gptr[g+1]]`.
    blocks: Vec<u32>,
    /// Group boundaries into `blocks` (`num_groups + 1` entries).
    gptr: Vec<u32>,
}

impl ComplementSchedule {
    /// Build from the full block index arrays of a HiCOO tensor.
    pub fn build(binds: &[Vec<u32>], num_blocks: usize, mode: usize) -> Self {
        let other: Vec<usize> = (0..binds.len()).filter(|&m| m != mode).collect();
        let mut blocks: Vec<u32> = (0..num_blocks as u32).collect();
        blocks.sort_unstable_by(|&a, &b| {
            for &m in &other {
                match binds[m][a as usize].cmp(&binds[m][b as usize]) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            a.cmp(&b)
        });
        let mut gptr = vec![0u32];
        for i in 1..num_blocks {
            let (a, b) = (blocks[i - 1] as usize, blocks[i] as usize);
            if other.iter().any(|&m| binds[m][a] != binds[m][b]) {
                gptr.push(i as u32);
            }
        }
        gptr.push(num_blocks as u32);
        if num_blocks == 0 {
            gptr = vec![0];
        }
        ComplementSchedule { mode, blocks, gptr }
    }

    /// The contracted mode.
    #[inline]
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of output blocks (groups).
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.gptr.len() - 1
    }

    /// Block ids of group `g`, ascending.
    #[inline]
    pub fn group_blocks(&self, g: usize) -> &[u32] {
        &self.blocks[self.gptr[g] as usize..self.gptr[g + 1] as usize]
    }
}

// ---------------------------------------------------------------------------
// Schedule cache
// ---------------------------------------------------------------------------

/// Identity of a cached schedule. The tensor is identified by the address
/// and length of its value array plus its structural counts: a tensor that
/// was dropped and replaced by a different one at the same address would
/// also have to match nnz, block count, block bits, mode, and thread count
/// for a stale hit — call [`clear_cache`] when exact control is needed
/// (tests do).
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
struct CacheKey {
    data_ptr: usize,
    nnz: usize,
    blocks: usize,
    block_bits: u8,
    mode: usize,
    threads: usize,
    kind: u8,
}

const KIND_MODE: u8 = 0;
const KIND_ROW: u8 = 1;
const KIND_COMPLEMENT: u8 = 2;

/// Bounded FIFO cache: schedules are small, but tensors come and go.
const CACHE_CAPACITY: usize = 24;

enum CachedSchedule {
    Mode(Arc<ModeSchedule>),
    Row(Arc<RowSchedule>),
    Complement(Arc<ComplementSchedule>),
}

static CACHE: OnceLock<Mutex<Vec<(CacheKey, CachedSchedule)>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<Vec<(CacheKey, CachedSchedule)>> {
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

fn cache_get(key: &CacheKey) -> Option<CachedSchedule> {
    let guard = cache().lock().unwrap();
    let found = guard.iter().find(|(k, _)| k == key).map(|(_, v)| match v {
        CachedSchedule::Mode(s) => CachedSchedule::Mode(Arc::clone(s)),
        CachedSchedule::Row(s) => CachedSchedule::Row(Arc::clone(s)),
        CachedSchedule::Complement(s) => CachedSchedule::Complement(Arc::clone(s)),
    });
    if found.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
    }
    found
}

fn cache_put(key: CacheKey, value: CachedSchedule) {
    let mut guard = cache().lock().unwrap();
    if guard.iter().any(|(k, _)| *k == key) {
        return;
    }
    if guard.len() >= CACHE_CAPACITY {
        guard.remove(0);
    }
    guard.push((key, value));
}

/// `(hits, misses)` counters of the schedule cache since process start.
pub fn cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Drop every cached schedule (used by tests and long-lived services that
/// cycle through many tensors).
pub fn clear_cache() {
    cache().lock().unwrap().clear();
}

/// Cached [`ModeSchedule`] for `(h, mode, current_threads())`.
pub fn mode_schedule<S: Scalar>(h: &HicooTensor<S>, mode: usize) -> Arc<ModeSchedule> {
    let threads = current_threads().max(1);
    let key = CacheKey {
        data_ptr: h.vals().as_ptr() as usize,
        nnz: h.nnz(),
        blocks: h.num_blocks(),
        block_bits: h.block_bits(),
        mode,
        threads,
        kind: KIND_MODE,
    };
    if let Some(CachedSchedule::Mode(s)) = cache_get(&key) {
        return s;
    }
    let s = Arc::new(ModeSchedule::build(
        &h.binds()[mode],
        h.bptr(),
        h.block_bits(),
        mode,
        threads,
    ));
    cache_put(key, CachedSchedule::Mode(Arc::clone(&s)));
    s
}

/// Cached [`ModeSchedule`] for a value-blocked HiCOO tensor, keyed on its
/// padded value buffer. Built from the same `binds`/`bptr` arrays as the
/// plain HiCOO schedule, so a vb tensor converted from a HiCOO tensor
/// yields an identical schedule (and the scheduled vb kernel bitwise-
/// matches the scheduled HiCOO kernel).
pub fn vb_mode_schedule<S: Scalar>(
    x: &crate::hicoo::VbHicooTensor<S>,
    mode: usize,
) -> Arc<ModeSchedule> {
    let threads = current_threads().max(1);
    let key = CacheKey {
        data_ptr: x.padded_vals().as_ptr() as usize,
        nnz: x.nnz(),
        blocks: x.num_blocks(),
        block_bits: x.block_bits(),
        mode,
        threads,
        kind: KIND_MODE,
    };
    if let Some(CachedSchedule::Mode(s)) = cache_get(&key) {
        return s;
    }
    let s = Arc::new(ModeSchedule::build(
        &x.binds()[mode],
        x.bptr(),
        x.block_bits(),
        mode,
        threads,
    ));
    cache_put(key, CachedSchedule::Mode(Arc::clone(&s)));
    s
}

/// Cached [`RowSchedule`] for `(x, mode, current_threads())`.
pub fn row_schedule<S: Scalar>(x: &CooTensor<S>, mode: usize) -> Arc<RowSchedule> {
    let threads = current_threads().max(1);
    let key = CacheKey {
        data_ptr: x.vals().as_ptr() as usize,
        nnz: x.nnz(),
        blocks: 0,
        block_bits: 0,
        mode,
        threads,
        kind: KIND_ROW,
    };
    if let Some(CachedSchedule::Row(s)) = cache_get(&key) {
        return s;
    }
    let s = Arc::new(RowSchedule::build(
        x.mode_inds(mode),
        x.shape().dim(mode) as usize,
        mode,
        threads,
    ));
    cache_put(key, CachedSchedule::Row(Arc::clone(&s)));
    s
}

/// Cached [`ComplementSchedule`] for `(h, mode)` (thread-independent).
pub fn complement_schedule<S: Scalar>(h: &HicooTensor<S>, mode: usize) -> Arc<ComplementSchedule> {
    let key = CacheKey {
        data_ptr: h.vals().as_ptr() as usize,
        nnz: h.nnz(),
        blocks: h.num_blocks(),
        block_bits: h.block_bits(),
        mode,
        threads: 0,
        kind: KIND_COMPLEMENT,
    };
    if let Some(CachedSchedule::Complement(s)) = cache_get(&key) {
        return s;
    }
    let s = Arc::new(ComplementSchedule::build(h.binds(), h.num_blocks(), mode));
    cache_put(key, CachedSchedule::Complement(Arc::clone(&s)));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn sample_hicoo() -> HicooTensor<f32> {
        let entries: Vec<(Vec<u32>, f32)> = (0..64)
            .map(|i| {
                (
                    vec![(i * 7) % 16, (i * 3) % 16, (i * 5) % 16],
                    i as f32 + 1.0,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![16, 16, 16]), entries).unwrap();
        HicooTensor::from_coo(&x, 2).unwrap()
    }

    #[test]
    fn mode_schedule_covers_every_block_once() {
        let h = sample_hicoo();
        for mode in 0..3 {
            let s = ModeSchedule::build(&h.binds()[mode], h.bptr(), h.block_bits(), mode, 4);
            let mut seen: Vec<u32> = (0..s.num_groups())
                .flat_map(|g| s.group_blocks(g).iter().copied())
                .collect();
            seen.sort_unstable();
            let expect: Vec<u32> = (0..h.num_blocks() as u32).collect();
            assert_eq!(seen, expect, "mode {mode}");
            assert_eq!(s.nnz(), h.nnz() as u64);
        }
    }

    #[test]
    fn mode_schedule_groups_share_output_block() {
        let h = sample_hicoo();
        let s = ModeSchedule::build(&h.binds()[0], h.bptr(), h.block_bits(), 0, 4);
        for g in 0..s.num_groups() {
            for &b in s.group_blocks(g) {
                assert_eq!(h.block_ind(b as usize, 0), s.group_out_block(g));
            }
        }
        // Groups strictly ascending.
        for g in 1..s.num_groups() {
            assert!(s.group_out_block(g) > s.group_out_block(g - 1));
        }
    }

    #[test]
    fn task_row_ranges_are_disjoint_and_ascending() {
        let h = sample_hicoo();
        let rows_n = h.shape().dim(1) as usize;
        let s = ModeSchedule::build(&h.binds()[1], h.bptr(), h.block_bits(), 1, 3);
        let mut prev_end = 0;
        for t in 0..s.num_tasks() {
            let r = s.task_row_range(t, rows_n);
            assert!(r.start >= prev_end, "task {t} overlaps");
            assert!(r.end <= rows_n);
            assert!(!r.is_empty());
            prev_end = r.end;
        }
    }

    #[test]
    fn empty_tensor_schedules_are_empty() {
        let s = ModeSchedule::build(&[], &[0], 2, 0, 4);
        assert_eq!(s.num_groups(), 0);
        assert_eq!(s.num_tasks(), 0);
        assert_eq!(s.nnz(), 0);
        let rs = RowSchedule::build(&[], 5, 0, 4);
        assert_eq!(rs.row_entries(0), &[] as &[u32]);
        let cs = ComplementSchedule::build(&[vec![], vec![]], 0, 0);
        assert_eq!(cs.num_groups(), 0);
    }

    #[test]
    fn row_schedule_partitions_nonzeros_stably() {
        let rows = vec![2u32, 0, 2, 1, 0, 2];
        let s = RowSchedule::build(&rows, 3, 0, 2);
        assert_eq!(s.row_entries(0), &[1, 4]);
        assert_eq!(s.row_entries(1), &[3]);
        assert_eq!(s.row_entries(2), &[0, 2, 5]);
        // Task rows cover 0..3 contiguously.
        let mut covered = 0;
        for t in 0..s.num_tasks() {
            let r = s.task_rows(t);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 3);
    }

    #[test]
    fn complement_groups_match_output_blocks() {
        let h = sample_hicoo();
        for mode in 0..3 {
            let s = ComplementSchedule::build(h.binds(), h.num_blocks(), mode);
            let other: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            let mut total = 0;
            for g in 0..s.num_groups() {
                let bs = s.group_blocks(g);
                total += bs.len();
                for w in bs.windows(2) {
                    assert!(w[0] < w[1], "blocks ascend within group");
                }
                for &b in bs {
                    for &m in &other {
                        assert_eq!(
                            h.block_ind(b as usize, m),
                            h.block_ind(bs[0] as usize, m),
                            "mode {mode} group {g}"
                        );
                    }
                }
            }
            assert_eq!(total, h.num_blocks());
        }
    }

    #[test]
    fn cache_reuses_schedules_per_tensor_mode_threads() {
        clear_cache();
        let h = sample_hicoo();
        let (h0, m0) = cache_stats();
        let a = mode_schedule(&h, 0);
        let b = mode_schedule(&h, 0);
        assert!(Arc::ptr_eq(&a, &b));
        let (h1, m1) = cache_stats();
        assert_eq!(h1 - h0, 1);
        assert_eq!(m1 - m0, 1);
        // A different mode misses.
        let _ = mode_schedule(&h, 1);
        let (_, m2) = cache_stats();
        assert_eq!(m2 - m1, 1);
        clear_cache();
    }

    #[test]
    fn balanced_tasks_never_split_groups_and_cover_all() {
        let weights: Vec<u64> = vec![5, 1, 1, 1, 40, 2, 2, 2, 2, 9];
        let tptr = balance_tasks(&weights, 3);
        assert_eq!(*tptr.first().unwrap(), 0);
        assert_eq!(*tptr.last().unwrap() as usize, weights.len());
        for w in tptr.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
