//! # tenbench-core
//!
//! Sparse tensor formats and parallel reference kernels for the `tenbench`
//! suite, a Rust reproduction of *"A Parallel Sparse Tensor Benchmark Suite
//! on CPUs and GPUs"* (Li et al., 2020).
//!
//! ## Formats
//!
//! * [`coo::CooTensor`] — coordinate format for general sparse tensors of
//!   arbitrary order (struct-of-arrays `u32` indices, generic values).
//! * [`coo::SemiSparseTensor`] — sCOO, for semi-sparse tensors with one dense
//!   mode (the natural output format of Ttm).
//! * [`hicoo::HicooTensor`] — hierarchical coordinate format: Morton-sorted
//!   blocks with 32-bit block indices and 8-bit element indices.
//! * [`hicoo::GHicooTensor`] — generalized HiCOO where each mode is either
//!   block-compressed or kept as a plain COO index array.
//! * [`hicoo::SemiSparseHicooTensor`] — sHiCOO, the semi-sparse HiCOO variant.
//! * [`csf::CsfTensor`] — compressed sparse fiber, listed by the paper as
//!   future work and provided here as an extension.
//!
//! ## Kernels
//!
//! The five benchmark kernels of the paper, each with sequential and
//! rayon-parallel CPU implementations over COO and HiCOO:
//!
//! * [`kernels::tew`] — element-wise add/sub/mul/div of two tensors,
//! * [`kernels::ts`] — tensor–scalar add/sub/mul/div,
//! * [`kernels::ttv`] — tensor-times-vector in a chosen mode,
//! * [`kernels::ttm`] — tensor-times-matrix in a chosen mode,
//! * [`kernels::mttkrp`] — matricized tensor times Khatri–Rao product.
//!
//! [`analysis`] implements the paper's Table 1 work/memory/operational-
//! intensity accounting, and [`methods`] builds complete tensor methods
//! (CP-ALS, the tensor power method, a Tucker-style TTM-chain) on top of the
//! kernels.
//!
//! ## Quick example
//!
//! ```
//! use tenbench_core::prelude::*;
//!
//! // A 3rd-order 4x4x4 tensor with four nonzeros.
//! let x = CooTensor::<f32>::from_entries(
//!     Shape::new(vec![4, 4, 4]),
//!     vec![(vec![0, 0, 0], 1.0), (vec![1, 2, 3], 2.0),
//!          (vec![2, 2, 2], 3.0), (vec![3, 0, 1], 4.0)],
//! )
//! .unwrap();
//!
//! // Tensor-times-vector in the last mode.
//! let v = DenseVector::from_vec(vec![1.0; 4]);
//! let y = tenbench_core::kernels::ttv::ttv(&x, &v, 2).unwrap();
//! assert_eq!(y.order(), 2);
//!
//! // Same computation through HiCOO agrees.
//! let h = HicooTensor::from_coo(&x, 7).unwrap();
//! let yh = tenbench_core::kernels::ttv::ttv_hicoo(&h, &v, 2).unwrap();
//! assert_eq!(y.nnz(), yh.to_coo().nnz());
//! ```

// Index-heavy kernel code deliberately uses explicit loop indices over
// several parallel arrays; the iterator forms clippy suggests are less
// readable there.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod align;
pub mod analysis;
pub mod atomic;
pub mod coo;
pub mod csf;
pub mod dense;
pub mod error;
pub mod hicoo;
pub mod kernels;
pub mod methods;
pub mod par;
pub mod radix;
pub mod reorder;
pub mod scalar;
pub mod sched;
pub mod shape;
pub mod simd;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::coo::{CooTensor, SemiSparseTensor};
    pub use crate::dense::{DenseMatrix, DenseVector};
    pub use crate::error::{Result, TensorError};
    pub use crate::hicoo::{GHicooTensor, HicooTensor, SemiSparseHicooTensor, VbHicooTensor};
    pub use crate::kernels::{EwOp, Kernel};
    pub use crate::scalar::Scalar;
    pub use crate::shape::Shape;
    pub use crate::simd::{BackendChoice, KernelBackend};
}

pub use crate::error::{Result, TensorError};
pub use crate::scalar::Scalar;
pub use crate::shape::Shape;
