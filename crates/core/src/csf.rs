//! CSF — compressed sparse fiber (Smith et al., SPLATT), listed by the paper
//! (§7) as the next format to add to the suite; provided here as an
//! extension.
//!
//! CSF stores a sparse tensor as a forest: level 0 holds the distinct
//! indices of the root mode, each deeper level the distinct index
//! continuations, and the leaves hold values. `fptr[l]` delimits the
//! children of each level-`l` node, exactly like nested CSR.

use std::collections::BTreeMap;

use rayon::prelude::*;

use crate::coo::CooTensor;
use crate::dense::DenseMatrix;
use crate::error::{Result, TensorError};
use crate::scalar::Scalar;
use crate::shape::Shape;

/// A sparse tensor in compressed sparse fiber format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsfTensor<S: Scalar> {
    shape: Shape,
    /// Mode permutation: `mode_order[0]` is the root level.
    mode_order: Vec<usize>,
    /// `order - 1` child-pointer arrays; `fptr[l][i]..fptr[l][i+1]` are the
    /// level-`l+1` children of level-`l` node `i`.
    fptr: Vec<Vec<usize>>,
    /// Node indices per level; `fids[order-1].len() == nnz`.
    fids: Vec<Vec<u32>>,
    vals: Vec<S>,
}

impl<S: Scalar> CsfTensor<S> {
    /// Build from COO with the given root-to-leaf mode order (defaults to
    /// ascending if `None`). The input is copied and sorted.
    pub fn from_coo(coo: &CooTensor<S>, mode_order: Option<Vec<usize>>) -> Result<Self> {
        let order = coo.order();
        let mode_order = mode_order.unwrap_or_else(|| (0..order).collect());
        {
            let mut seen = vec![false; order];
            if mode_order.len() != order
                || mode_order.iter().any(|&m| {
                    if m >= order || seen[m] {
                        true
                    } else {
                        seen[m] = true;
                        false
                    }
                })
            {
                return Err(TensorError::InvalidStructure(format!(
                    "mode order {mode_order:?} is not a permutation of 0..{order}"
                )));
            }
        }
        let mut c = coo.clone();
        c.sort_lexicographic(&mode_order);
        let m = c.nnz();

        // starts[l]: positions where a new node at level l begins (distinct
        // prefix of length l+1 in the sorted order).
        let mut starts: Vec<Vec<usize>> = Vec::with_capacity(order);
        for l in 0..order {
            let prefix = &mode_order[..=l];
            let mut s = Vec::new();
            for i in 0..m {
                let new_node = i == 0
                    || prefix
                        .iter()
                        .any(|&md| c.mode_inds(md)[i] != c.mode_inds(md)[i - 1]);
                if new_node {
                    s.push(i);
                }
            }
            starts.push(s);
        }

        let fids: Vec<Vec<u32>> = (0..order)
            .map(|l| {
                let md = mode_order[l];
                starts[l].iter().map(|&p| c.mode_inds(md)[p]).collect()
            })
            .collect();

        // fptr[l][i] = rank of starts[l][i] within starts[l+1] (which is a
        // superset), with a final sentinel.
        let mut fptr: Vec<Vec<usize>> = Vec::with_capacity(order.saturating_sub(1));
        for l in 0..order.saturating_sub(1) {
            let upper = &starts[l];
            let lowerv = &starts[l + 1];
            let mut ptr = Vec::with_capacity(upper.len() + 1);
            let mut j = 0usize;
            for &pos in upper {
                while lowerv[j] != pos {
                    j += 1;
                }
                ptr.push(j);
            }
            ptr.push(lowerv.len());
            fptr.push(ptr);
        }

        Ok(CsfTensor {
            shape: c.shape().clone(),
            mode_order,
            fptr,
            fids,
            vals: c.vals().to_vec(),
        })
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The root-to-leaf mode permutation.
    #[inline]
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// Number of nodes at tree level `l` (level `order-1` is the leaves).
    pub fn num_nodes(&self, l: usize) -> usize {
        self.fids[l].len()
    }

    /// Storage bytes: node indices (`u32`) at every level, child pointers
    /// (counted as `u64` file-format width), and values.
    pub fn storage_bytes(&self) -> u64 {
        let ids: u64 = self.fids.iter().map(|v| 4 * v.len() as u64).sum();
        let ptrs: u64 = self.fptr.iter().map(|v| 8 * v.len() as u64).sum();
        ids + ptrs + self.vals.len() as u64 * S::BYTES
    }

    /// Expand to COO (in the CSF's sorted order).
    pub fn to_coo(&self) -> CooTensor<S> {
        let order = self.order();
        let m = self.nnz();
        let mut inds: Vec<Vec<u32>> = vec![vec![0u32; m]; order];
        // Walk the tree once, filling each leaf's full coordinate.
        fn fill<S: Scalar>(
            t: &CsfTensor<S>,
            l: usize,
            node: usize,
            prefix: &mut Vec<u32>,
            inds: &mut [Vec<u32>],
        ) {
            prefix.push(t.fids[l][node]);
            if l == t.order() - 1 {
                for (d, &md) in t.mode_order.iter().enumerate() {
                    inds[md][node] = prefix[d];
                }
            } else {
                for child in t.fptr[l][node]..t.fptr[l][node + 1] {
                    fill(t, l + 1, child, prefix, inds);
                }
            }
            prefix.pop();
        }
        let mut prefix = Vec::with_capacity(order);
        for root in 0..self.num_nodes(0) {
            fill(self, 0, root, &mut prefix, &mut inds);
        }
        CooTensor::from_parts_unchecked(
            self.shape.clone(),
            inds,
            self.vals.clone(),
            crate::coo::SortState::Lexicographic(self.mode_order.clone()),
        )
    }

    /// Coordinate → value map (test helper).
    pub fn to_map(&self) -> BTreeMap<Vec<u32>, f64> {
        self.to_coo().to_map()
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<()> {
        let order = self.order();
        if self.fids.len() != order || self.fptr.len() + 1 != order {
            return Err(TensorError::InvalidStructure(
                "level array counts do not match order".into(),
            ));
        }
        for l in 0..order - 1 {
            if self.fptr[l].len() != self.fids[l].len() + 1 {
                return Err(TensorError::InvalidStructure(format!(
                    "fptr[{l}] length mismatch"
                )));
            }
            if *self.fptr[l].last().unwrap() != self.fids[l + 1].len() {
                return Err(TensorError::InvalidStructure(format!(
                    "fptr[{l}] does not cover level {}",
                    l + 1
                )));
            }
            if self.fptr[l].windows(2).any(|w| w[0] >= w[1]) {
                return Err(TensorError::InvalidStructure(format!(
                    "fptr[{l}] not strictly increasing (empty node)"
                )));
            }
        }
        if self.fids[order - 1].len() != self.vals.len() {
            return Err(TensorError::InvalidStructure(
                "leaf count != value count".into(),
            ));
        }
        Ok(())
    }
}

/// Root-mode Mttkrp over CSF (SPLATT-style): each subtree reduces bottom-up,
/// factor rows of deeper levels are shared across siblings, and roots are
/// parallelized with no races (root indices are distinct).
///
/// `mode` must equal the CSF's root mode; re-orient the tensor with
/// [`CsfTensor::from_coo`] for other modes.
pub fn mttkrp_csf<S: Scalar>(
    t: &CsfTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<DenseMatrix<S>> {
    if mode != t.mode_order[0] {
        return Err(TensorError::InvalidStructure(format!(
            "CSF Mttkrp requires mode {mode} at the root; tensor is rooted at {}",
            t.mode_order[0]
        )));
    }
    if factors.len() != t.order() {
        return Err(TensorError::FactorMismatch(format!(
            "{} factors for order-{}",
            factors.len(),
            t.order()
        )));
    }
    let r = factors[0].cols();
    for (m, f) in factors.iter().enumerate() {
        if f.cols() != r || f.rows() != t.shape.dim(m) as usize {
            return Err(TensorError::FactorMismatch(format!(
                "factor {m} has shape {}x{}",
                f.rows(),
                f.cols()
            )));
        }
    }
    let order = t.order();
    let mut out = DenseMatrix::zeros(t.shape.dim(mode) as usize, r);

    // Bottom-up reduction of one node: returns the node's R-vector.
    fn reduce<S: Scalar>(
        t: &CsfTensor<S>,
        factors: &[&DenseMatrix<S>],
        l: usize,
        node: usize,
        acc: &mut Vec<Vec<S>>,
    ) {
        let order = t.order();
        if l == order - 1 {
            let row = factors[t.mode_order[l]].row(t.fids[l][node] as usize);
            let val = t.vals[node];
            let dst = &mut acc[l];
            for (d, &c) in dst.iter_mut().zip(row) {
                *d = val * c;
            }
            return;
        }
        acc[l].fill(S::ZERO);
        for child in t.fptr[l][node]..t.fptr[l][node + 1] {
            reduce(t, factors, l + 1, child, acc);
            // Borrow-split: children write acc[l+1], we fold into acc[l].
            let (upper, lower) = acc.split_at_mut(l + 1);
            for (d, &c) in upper[l].iter_mut().zip(lower[0].iter()) {
                *d += c;
            }
        }
        if l > 0 {
            let row = factors[t.mode_order[l]].row(t.fids[l][node] as usize);
            for (d, &c) in acc[l].iter_mut().zip(row) {
                *d *= c;
            }
        }
    }

    let rows: Vec<(u32, Vec<S>)> = (0..t.num_nodes(0))
        .into_par_iter()
        .map(|root| {
            let mut acc: Vec<Vec<S>> = (0..order).map(|_| vec![S::ZERO; r]).collect();
            reduce(t, factors, 0, root, &mut acc);
            (t.fids[0][root], std::mem::take(&mut acc[0]))
        })
        .collect();
    for (i, v) in rows {
        let dst = out.row_mut(i as usize);
        for (d, s) in dst.iter_mut().zip(v) {
            *d += s;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::kernels::mttkrp::mttkrp_seq;
    use crate::scalar::approx_eq;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![0, 3, 2], -1.5),
                (vec![1, 2, 1], 3.0),
                (vec![2, 3, 0], 4.0),
                (vec![2, 3, 4], 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_default_order() {
        let x = sample();
        let t = CsfTensor::from_coo(&x, None).unwrap();
        assert!(t.validate().is_ok());
        assert_eq!(t.nnz(), 6);
        assert_eq!(t.to_map(), x.to_map());
    }

    #[test]
    fn round_trip_permuted_orders() {
        let x = sample();
        for order in [vec![2, 1, 0], vec![1, 0, 2], vec![2, 0, 1]] {
            let t = CsfTensor::from_coo(&x, Some(order.clone())).unwrap();
            assert!(t.validate().is_ok(), "{order:?}");
            assert_eq!(t.to_map(), x.to_map(), "{order:?}");
        }
    }

    #[test]
    fn rejects_bad_mode_order() {
        let x = sample();
        assert!(CsfTensor::from_coo(&x, Some(vec![0, 0, 1])).is_err());
        assert!(CsfTensor::from_coo(&x, Some(vec![0, 1])).is_err());
        assert!(CsfTensor::from_coo(&x, Some(vec![0, 1, 3])).is_err());
    }

    #[test]
    fn node_counts_shrink_towards_root() {
        let x = sample();
        let t = CsfTensor::from_coo(&x, None).unwrap();
        assert_eq!(t.num_nodes(0), 3); // root indices {0, 1, 2}
        assert_eq!(t.num_nodes(1), 4); // prefixes (0,0),(0,3),(1,2),(2,3)
        assert_eq!(t.num_nodes(2), 6);
    }

    #[test]
    fn csf_compresses_shared_prefixes() {
        let x = sample();
        let t = CsfTensor::from_coo(&x, None).unwrap();
        // COO stores 3 u32 per nnz; CSF shares prefix indices.
        assert!(t.fids[0].len() + t.fids[1].len() < 2 * t.nnz());
    }

    #[test]
    fn mttkrp_matches_coo_reference() {
        let x = sample();
        let factors: Vec<DenseMatrix<f32>> = (0..3)
            .map(|m| {
                DenseMatrix::from_fn(x.shape().dim(m) as usize, 4, |i, j| {
                    ((i + 2 * j + m) % 5) as f32 - 1.0
                })
            })
            .collect();
        let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
        for mode in 0..3 {
            let mut order: Vec<usize> = (0..3).filter(|&m| m != mode).collect();
            order.insert(0, mode);
            let t = CsfTensor::from_coo(&x, Some(order)).unwrap();
            let got = mttkrp_csf(&t, &frefs, mode).unwrap();
            let expect = mttkrp_seq(&x, &frefs, mode).unwrap();
            for (a, b) in got.data().iter().zip(expect.data()) {
                assert!(approx_eq(*a, *b, 1e-5), "mode {mode}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn mttkrp_rejects_non_root_mode() {
        let x = sample();
        let t = CsfTensor::from_coo(&x, None).unwrap();
        let factors: Vec<DenseMatrix<f32>> = (0..3)
            .map(|m| DenseMatrix::constant(x.shape().dim(m) as usize, 2, 1.0))
            .collect();
        let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
        assert!(mttkrp_csf(&t, &frefs, 1).is_err());
    }
}
