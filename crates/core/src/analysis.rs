//! Work, memory-traffic, and operational-intensity accounting (paper §3.2,
//! Table 1).
//!
//! Table 1 analyzes third-order cubical tensors; this module implements the
//! general-order formulas those rows specialize, so the Roofline bounds of
//! §5.2 can use "an accurate #Flops/#Bytes ratio by taking different tensor
//! features into account, especially for Ttv and Ttm because of the M_F
//! term".
//!
//! Conventions (matching the paper): indices are 32-bit, values are
//! single-precision (4 bytes), a one-level cache of minimal size satisfies
//! the data reuse inside an algorithm — so each operand array is counted
//! once per pass, and the gathered dense operand (vector/matrix rows) is
//! counted once per touching nonzero because its access pattern is
//! irregular.

/// Bytes per index and per value (32-bit each, as in the paper).
pub const IDX_BYTES: u64 = 4;
/// Bytes per single-precision value.
pub const VAL_BYTES: u64 = 4;

/// Floating-point work and memory traffic of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCost {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes moved to/from memory under the Table 1 model.
    pub bytes: u64,
}

impl KernelCost {
    /// Operational intensity in flops/byte.
    pub fn oi(&self) -> f64 {
        self.flops as f64 / self.bytes as f64
    }
}

/// Tew over two same-pattern tensors with `m` nonzeros: read two value
/// arrays, write one — `1/12` flops per byte regardless of order (indices
/// are shared with the output and set during pre-processing).
pub fn tew_cost(m: u64) -> KernelCost {
    KernelCost {
        flops: m,
        bytes: 3 * VAL_BYTES * m,
    }
}

/// Ts over `m` nonzeros: read one value array, write one — `1/8`.
pub fn ts_cost(m: u64) -> KernelCost {
    KernelCost {
        flops: m,
        bytes: 2 * VAL_BYTES * m,
    }
}

/// Ttv in one mode of an order-`order` tensor with `m` nonzeros and `mf`
/// mode-`n` fibers. Per nonzero: value + product-mode index + an irregular
/// gather from the vector (12 bytes); per output fiber: `N-1` indices and
/// one value (`4N` bytes). Third-order: `12M + 12M_F`, OI ~ `1/6`.
pub fn ttv_cost(order: usize, m: u64, mf: u64) -> KernelCost {
    KernelCost {
        flops: 2 * m,
        bytes: (VAL_BYTES + IDX_BYTES + VAL_BYTES) * m + (IDX_BYTES * order as u64) * mf,
    }
}

/// Ttm with rank `r`: per nonzero a value + index (8 bytes) and an `R`-row
/// gather (`4R`); per fiber an `R` output stripe (`4R`) plus `N-1` indices.
/// Third-order: `4MR + 4M_F R + 8M + 8M_F`, OI ~ `1/2`.
pub fn ttm_cost(order: usize, m: u64, mf: u64, r: u64) -> KernelCost {
    KernelCost {
        flops: 2 * m * r,
        bytes: (VAL_BYTES + IDX_BYTES) * m
            + VAL_BYTES * r * m
            + VAL_BYTES * r * mf
            + IDX_BYTES * (order as u64 - 1) * mf,
    }
}

/// COO Mttkrp with rank `r`: per nonzero `N-1` factor-row gathers and one
/// output-row update (`4NR` bytes) plus all indices and the value
/// (`4(N+1)`). Third-order: `12MR + 16M`, OI ~ `1/4`.
pub fn mttkrp_coo_cost(order: usize, m: u64, r: u64) -> KernelCost {
    let n = order as u64;
    KernelCost {
        flops: n * m * r,
        bytes: VAL_BYTES * n * r * m + IDX_BYTES * (n + 1) * m,
    }
}

/// HiCOO Mttkrp: factor rows are reused within a block, so at most
/// `min(n_b * B, M)` distinct rows are loaded per matrix (`4NR` bytes per
/// row across the `N` matrices); element indices cost 1 byte per mode per
/// nonzero plus the value (`N + 4`); block metadata costs `4N + 8` per
/// block. Third-order: `12R min(n_b B, M) + 7M + 20n_b`.
pub fn mttkrp_hicoo_cost(order: usize, m: u64, r: u64, nb: u64, block_size: u64) -> KernelCost {
    let n = order as u64;
    let rows_loaded = (nb * block_size).min(m);
    KernelCost {
        flops: n * m * r,
        bytes: VAL_BYTES * n * r * rows_loaded + (n + 4) * m + (IDX_BYTES * n + 8) * nb,
    }
}

/// One row of the paper's Table 1 (third-order cubical analysis), with the
/// symbolic formulas as printed there.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Symbolic work.
    pub work: &'static str,
    /// Symbolic COO memory traffic.
    pub coo_bytes: &'static str,
    /// Symbolic HiCOO memory traffic.
    pub hicoo_bytes: &'static str,
    /// Symbolic operational intensity.
    pub oi: &'static str,
}

/// The five rows of Table 1 as the paper prints them.
pub fn table1_rows() -> Vec<Table1Row> {
    vec![
        Table1Row {
            kernel: "Tew",
            work: "M",
            coo_bytes: "12M",
            hicoo_bytes: "12M",
            oi: "1/12",
        },
        Table1Row {
            kernel: "Ts",
            work: "M",
            coo_bytes: "8M",
            hicoo_bytes: "8M",
            oi: "1/8",
        },
        Table1Row {
            kernel: "Ttv",
            work: "2M",
            coo_bytes: "12M + 12MF",
            hicoo_bytes: "12M + 12MF",
            oi: "~1/6",
        },
        Table1Row {
            kernel: "Ttm",
            work: "2MR",
            coo_bytes: "4MR + 4MFR + 8M + 8MF",
            hicoo_bytes: "4MR + 4MFR + 8M + 8MF",
            oi: "~1/2",
        },
        Table1Row {
            kernel: "Mttkrp",
            work: "3MR",
            coo_bytes: "12MR + 16M",
            hicoo_bytes: "12R min{nb*B, M} + 7M + 20nb",
            oi: "~1/4",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tew_and_ts_match_table1() {
        assert!((tew_cost(1000).oi() - 1.0 / 12.0).abs() < 1e-12);
        assert!((ts_cost(1000).oi() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn ttv_third_order_matches_table1() {
        let c = ttv_cost(3, 1000, 100);
        assert_eq!(c.flops, 2000);
        assert_eq!(c.bytes, 12 * 1000 + 12 * 100);
        // With MF << M the OI approaches 1/6.
        let c2 = ttv_cost(3, 1_000_000, 1);
        assert!((c2.oi() - 1.0 / 6.0).abs() < 1e-3);
    }

    #[test]
    fn ttm_third_order_matches_table1() {
        let (m, mf, r) = (1000u64, 100u64, 16u64);
        let c = ttm_cost(3, m, mf, r);
        assert_eq!(c.flops, 2 * m * r);
        assert_eq!(c.bytes, 4 * m * r + 4 * mf * r + 8 * m + 8 * mf);
        // Large R, MF << M: OI approaches 1/2.
        let c2 = ttm_cost(3, 1_000_000, 1, 1024);
        assert!((c2.oi() - 0.5).abs() < 1e-2);
    }

    #[test]
    fn mttkrp_coo_matches_table1() {
        let (m, r) = (1000u64, 16u64);
        let c = mttkrp_coo_cost(3, m, r);
        assert_eq!(c.flops, 3 * m * r);
        assert_eq!(c.bytes, 12 * m * r + 16 * m);
        // Large R: OI approaches 1/4.
        let c2 = mttkrp_coo_cost(3, 1_000_000, 4096);
        assert!((c2.oi() - 0.25).abs() < 1e-3);
    }

    #[test]
    fn mttkrp_hicoo_matches_table1_and_caps_rows() {
        let (m, r, nb, b) = (1000u64, 16u64, 10u64, 128u64);
        let c = mttkrp_hicoo_cost(3, m, r, nb, b);
        assert_eq!(c.flops, 3 * m * r);
        assert_eq!(c.bytes, 12 * r * (nb * b).min(m) + 7 * m + 20 * nb);
        // When blocks are dense enough the row loads cap at M.
        let capped = mttkrp_hicoo_cost(3, 100, r, 1000, 128);
        assert_eq!(capped.bytes, 12 * r * 100 + 7 * 100 + 20 * 1000);
    }

    #[test]
    fn hicoo_mttkrp_moves_fewer_bytes_when_blocks_are_dense() {
        // Dense blocks: nb * B << M means HiCOO reloads far fewer rows.
        let (m, r) = (1_000_000u64, 16u64);
        let coo = mttkrp_coo_cost(3, m, r);
        let hic = mttkrp_hicoo_cost(3, m, r, 1000, 128);
        assert!(hic.bytes < coo.bytes);
        assert!(hic.oi() > coo.oi());
    }

    #[test]
    fn table1_has_five_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4].kernel, "Mttkrp");
    }
}
