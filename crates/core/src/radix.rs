//! Parallel stable LSD radix sorting over packed coordinate keys.
//!
//! Every reordering in the suite — lexicographic / mode-last COO sorts,
//! Morton block sorts for HiCOO, gHiCOO's mixed permutation sort, and the
//! counting sort behind `sched::RowSchedule` — reduces to "stably sort a
//! `u32` permutation by an integer key". This module provides that engine:
//! least-significant-digit radix passes over 8-bit digits, each pass built
//! from per-chunk histograms, one digit-major exclusive scan, and a
//! parallel stable scatter.
//!
//! Determinism: a pass scatters chunk `c`'s occurrences of digit `d` to
//! `offset[d] + (occurrences of d in chunks < c)`, preserving relative
//! order both within and across chunks. Every pass is therefore a *stable*
//! sort by its digit regardless of how many chunks (threads) participate,
//! so the final permutation is the unique stable order of the full key —
//! identical to a sequential comparator sort with an index tie-break.

use rayon::prelude::*;

use tenbench_obs as obs;

/// Number of distinct 8-bit digits.
const BUCKETS: usize = 256;

/// Below this many elements a parallel pass is all overhead.
const PAR_MIN: usize = 1 << 14;

/// Smallest per-chunk share worth a dedicated histogram.
const MIN_CHUNK: usize = 1 << 12;

/// Number of 8-bit passes needed to cover `max_key`.
#[inline]
pub fn passes_for(max_key: u128) -> usize {
    if max_key == 0 {
        0
    } else {
        (128 - max_key.leading_zeros() as usize).div_ceil(8)
    }
}

/// Bits needed to represent every value in `0..=max_value`.
#[inline]
pub fn bits_for(max_value: u32) -> u32 {
    32 - max_value.leading_zeros()
}

/// Write-only shared pointer for the disjoint scatter phase.
struct RawOut(*mut u32);
unsafe impl Sync for RawOut {}
unsafe impl Send for RawOut {}

/// Stably sort `perm` by an abstract little-endian key, 8 bits per pass.
///
/// `digit(p, pass)` must return byte `pass` (0 = least significant) of
/// element `p`'s key and be pure: the engine may evaluate it repeatedly and
/// from any thread. `passes` bounds the key width; use [`passes_for`].
pub fn sort_perm_by_digits<D>(perm: &mut Vec<u32>, passes: usize, digit: D)
where
    D: Fn(u32, usize) -> u8 + Sync,
{
    let n = perm.len();
    if n <= 1 || passes == 0 {
        return;
    }
    let _span = obs::span!("radix.sort");
    obs::counters::SORT_KEYS.add(n as u64);
    let threads = rayon::current_num_threads().max(1);
    let mut buf: Vec<u32> = vec![0u32; n];
    for pass in 0..passes {
        let skipped = if threads > 1 && n >= PAR_MIN {
            parallel_pass(perm, &mut buf, pass, &digit, threads)
        } else {
            sequential_pass(perm, &mut buf, pass, &digit)
        };
        if !skipped {
            std::mem::swap(perm, &mut buf);
        }
    }
}

/// One sequential stable counting pass. Returns `true` if the pass was a
/// no-op (all elements share the digit) and `buf` was left untouched.
fn sequential_pass<D>(perm: &[u32], buf: &mut [u32], pass: usize, digit: &D) -> bool
where
    D: Fn(u32, usize) -> u8,
{
    let mut hist = [0u32; BUCKETS];
    for &p in perm {
        hist[digit(p, pass) as usize] += 1;
    }
    if hist.iter().any(|&c| c as usize == perm.len()) {
        return true;
    }
    let mut offs = [0u32; BUCKETS];
    let mut running = 0u32;
    for d in 0..BUCKETS {
        offs[d] = running;
        running += hist[d];
    }
    for &p in perm {
        let d = digit(p, pass) as usize;
        buf[offs[d] as usize] = p;
        offs[d] += 1;
    }
    false
}

/// One parallel stable counting pass: per-chunk histograms, a digit-major
/// exclusive scan, then a disjoint scatter. Returns `true` if skipped.
fn parallel_pass<D>(perm: &[u32], buf: &mut [u32], pass: usize, digit: &D, threads: usize) -> bool
where
    D: Fn(u32, usize) -> u8 + Sync,
{
    let n = perm.len();
    let nchunks = threads.min(n / MIN_CHUNK).max(1);
    let bounds: Vec<usize> = (0..=nchunks).map(|c| c * n / nchunks).collect();

    // Per-chunk digit histograms.
    let mut hists: Vec<[u32; BUCKETS]> = (0..nchunks)
        .into_par_iter()
        .with_min_len(1)
        .map(|c| {
            let mut h = [0u32; BUCKETS];
            for &p in &perm[bounds[c]..bounds[c + 1]] {
                h[digit(p, pass) as usize] += 1;
            }
            h
        })
        .collect();

    // Skip the pass outright when a single digit owns every element.
    let mut totals = [0u32; BUCKETS];
    for h in &hists {
        for d in 0..BUCKETS {
            totals[d] += h[d];
        }
    }
    if totals.iter().any(|&t| t as usize == n) {
        return true;
    }

    // Digit-major exclusive scan turns each chunk's histogram into its
    // private start offsets; chunk c's digit-d run lands directly after
    // every earlier chunk's digit-d run, which is what makes the scatter
    // stable for any chunk count.
    let mut running = 0u32;
    for d in 0..BUCKETS {
        for h in hists.iter_mut() {
            let count = h[d];
            h[d] = running;
            running += count;
        }
    }

    let out = RawOut(buf.as_mut_ptr());
    let out_ref = &out;
    let hists_ref = &hists;
    let bounds_ref = &bounds;
    (0..nchunks).into_par_iter().with_min_len(1).for_each(|c| {
        let mut offs = hists_ref[c];
        for &p in &perm[bounds_ref[c]..bounds_ref[c + 1]] {
            let d = digit(p, pass) as usize;
            // SAFETY: the scan above assigns every (chunk, digit) run a
            // slice of `buf` disjoint from all others, and `buf` has
            // length n >= the sum of all runs.
            unsafe { out_ref.0.add(offs[d] as usize).write(p) };
            offs[d] += 1;
        }
    });
    false
}

/// Stably sort `perm` by precomputed packed keys (`keys[p]`), processing
/// only the bytes up to the highest set byte of `max_key`.
pub fn sort_perm_by_u128_keys(perm: &mut Vec<u32>, keys: &[u128], max_key: u128) {
    let passes = passes_for(max_key);
    sort_perm_by_digits(perm, passes, |p, pass| {
        (keys[p as usize] >> (8 * pass)) as u8
    });
}

/// Stably sort `perm` by a `u32` key, processing only the bytes up to the
/// highest set byte of `max_value`.
pub fn sort_perm_by_u32_key<K>(perm: &mut Vec<u32>, key: K, max_value: u32)
where
    K: Fn(u32) -> u32 + Sync,
{
    let passes = passes_for(max_value as u128);
    sort_perm_by_digits(perm, passes, |p, pass| (key(p) >> (8 * pass)) as u8);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::with_threads;

    fn splitmix(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn reference_perm(keys: &[u128]) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        perm.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]).then(a.cmp(&b)));
        perm
    }

    #[test]
    fn matches_stable_comparator_sort() {
        let mut rng = splitmix(7);
        for &n in &[0usize, 1, 2, 100, 5_000, 40_000] {
            let keys: Vec<u128> = (0..n).map(|_| (rng() % 10_000) as u128).collect();
            let max = keys.iter().copied().max().unwrap_or(0);
            let mut perm: Vec<u32> = (0..n as u32).collect();
            sort_perm_by_u128_keys(&mut perm, &keys, max);
            assert_eq!(perm, reference_perm(&keys), "n = {n}");
        }
    }

    #[test]
    fn identical_result_for_any_thread_count() {
        let mut rng = splitmix(42);
        let keys: Vec<u128> = (0..60_000)
            .map(|_| (rng() as u128) << 64 | rng() as u128)
            .collect();
        let max = keys.iter().copied().max().unwrap();
        let expect = reference_perm(&keys);
        for threads in [1usize, 2, 3, 4, 8] {
            let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
            with_threads(threads, || sort_perm_by_u128_keys(&mut perm, &keys, max));
            assert_eq!(perm, expect, "threads = {threads}");
        }
    }

    #[test]
    fn u32_key_sort_is_stable() {
        // Many duplicates: stability means ties stay in index order.
        let keys: Vec<u32> = (0..50_000u32).map(|i| i % 17).collect();
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        with_threads(4, || {
            sort_perm_by_u32_key(&mut perm, |p| keys[p as usize], 16)
        });
        for w in perm.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (ka, kb) = (keys[a as usize], keys[b as usize]);
            assert!(ka < kb || (ka == kb && a < b));
        }
    }

    #[test]
    fn skips_constant_digit_passes() {
        // All keys equal: every pass is skippable and the permutation must
        // come back untouched (stable sort of a constant key).
        let keys = vec![0xABu128; 30_000];
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        let expect = perm.clone();
        with_threads(4, || sort_perm_by_u128_keys(&mut perm, &keys, 0xAB));
        assert_eq!(perm, expect);
    }

    #[test]
    fn zero_max_key_is_a_no_op() {
        let mut perm: Vec<u32> = vec![3, 1, 2];
        sort_perm_by_u128_keys(&mut perm, &[0, 0, 0, 0], 0);
        assert_eq!(perm, vec![3, 1, 2]);
    }

    #[test]
    fn helpers_compute_widths() {
        assert_eq!(passes_for(0), 0);
        assert_eq!(passes_for(1), 1);
        assert_eq!(passes_for(255), 1);
        assert_eq!(passes_for(256), 2);
        assert_eq!(passes_for(u128::MAX), 16);
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(u32::MAX), 32);
    }
}
