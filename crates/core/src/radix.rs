//! Parallel stable LSD radix sorting over packed coordinate keys.
//!
//! Every reordering in the suite — lexicographic / mode-last COO sorts,
//! Morton block sorts for HiCOO, gHiCOO's mixed permutation sort, and the
//! counting sort behind `sched::RowSchedule` — reduces to "stably sort a
//! `u32` permutation by an integer key". This module provides that engine:
//! least-significant-digit radix passes over 8-bit digits, each pass built
//! from per-chunk histograms, one digit-major exclusive scan, and a
//! parallel stable scatter.
//!
//! Determinism: a pass scatters chunk `c`'s occurrences of digit `d` to
//! `offset[d] + (occurrences of d in chunks < c)`, preserving relative
//! order both within and across chunks. Every pass is therefore a *stable*
//! sort by its digit regardless of how many chunks (threads) participate,
//! so the final permutation is the unique stable order of the full key —
//! identical to a sequential comparator sort with an index tie-break.

use rayon::prelude::*;

use tenbench_obs as obs;

/// Number of distinct 8-bit digits.
const BUCKETS: usize = 256;

/// Below this many elements a parallel pass is all overhead.
const PAR_MIN: usize = 1 << 14;

/// Smallest per-chunk share worth a dedicated histogram.
const MIN_CHUNK: usize = 1 << 12;

/// Chunk count at which the digit-major exclusive scan over the
/// `nchunks x 256` histogram matrix is merged in parallel (per-digit
/// columns) instead of one sequential sweep. Below this the matrix fits
/// in cache and a parallel region is pure overhead.
const SCAN_PAR_MIN_CHUNKS: usize = 32;

/// Number of 8-bit passes needed to cover `max_key`.
#[inline]
pub fn passes_for(max_key: u128) -> usize {
    if max_key == 0 {
        0
    } else {
        (128 - max_key.leading_zeros() as usize).div_ceil(8)
    }
}

/// Bits needed to represent every value in `0..=max_value`.
#[inline]
pub fn bits_for(max_value: u32) -> u32 {
    32 - max_value.leading_zeros()
}

/// Write-only shared pointer for the disjoint scatter phase.
struct RawOut(*mut u32);
unsafe impl Sync for RawOut {}
unsafe impl Send for RawOut {}

/// Stably sort `perm` by an abstract little-endian key, 8 bits per pass.
///
/// `digit(p, pass)` must return byte `pass` (0 = least significant) of
/// element `p`'s key and be pure: the engine may evaluate it repeatedly and
/// from any thread. `passes` bounds the key width; use [`passes_for`].
pub fn sort_perm_by_digits<D>(perm: &mut Vec<u32>, passes: usize, digit: D)
where
    D: Fn(u32, usize) -> u8 + Sync,
{
    let n = perm.len();
    if n <= 1 || passes == 0 {
        return;
    }
    let _span = obs::span!("radix.sort");
    obs::counters::SORT_KEYS.add(n as u64);
    let threads = rayon::current_num_threads().max(1);
    if threads > 1 && n >= PAR_MIN {
        // First-touch the scratch from the pool workers: the scatter is
        // bandwidth-bound, and pages committed by the allocating thread
        // would otherwise serve every worker's writes from one node.
        let mut buf: Vec<u32> = crate::par::first_touch_filled(n, 0);
        for pass in 0..passes {
            if !parallel_pass(perm, &mut buf, pass, &digit, threads) {
                std::mem::swap(perm, &mut buf);
            }
        }
    } else {
        sequential_sort(perm, passes, &digit);
    }
}

/// Sequential LSD sort with every pass's histogram fused into one sweep.
///
/// Digit counts are permutation-invariant, so pass `k`'s histogram taken
/// on the *original* order is still valid when pass `k` runs. Computing
/// them all up front turns each pass into a scatter-only sweep: one read
/// of the key array per pass instead of two, which is the dominant cost
/// for multi-byte keys.
fn sequential_sort<D>(perm: &mut Vec<u32>, passes: usize, digit: &D)
where
    D: Fn(u32, usize) -> u8,
{
    let n = perm.len();
    let mut hists = vec![[0u32; BUCKETS]; passes];
    for &p in perm.iter() {
        for (pass, h) in hists.iter_mut().enumerate() {
            h[digit(p, pass) as usize] += 1;
        }
    }
    let mut buf: Vec<u32> = vec![0u32; n];
    for (pass, hist) in hists.iter().enumerate() {
        // A pass where one digit owns every element is a stable no-op.
        if hist.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut offs = [0u32; BUCKETS];
        let mut running = 0u32;
        for (o, &c) in offs.iter_mut().zip(hist.iter()) {
            *o = running;
            running += c;
        }
        for &p in perm.iter() {
            let d = digit(p, pass) as usize;
            buf[offs[d] as usize] = p;
            offs[d] += 1;
        }
        std::mem::swap(perm, &mut buf);
    }
}

/// One parallel stable counting pass: per-chunk histograms, a digit-major
/// exclusive scan, then a disjoint scatter. Returns `true` if skipped.
fn parallel_pass<D>(perm: &[u32], buf: &mut [u32], pass: usize, digit: &D, threads: usize) -> bool
where
    D: Fn(u32, usize) -> u8 + Sync,
{
    let n = perm.len();
    let nchunks = threads.min(n / MIN_CHUNK).max(1);
    let bounds: Vec<usize> = (0..=nchunks).map(|c| c * n / nchunks).collect();

    // Per-chunk digit histograms.
    let mut hists: Vec<[u32; BUCKETS]> = (0..nchunks)
        .into_par_iter()
        .with_min_len(1)
        .map(|c| {
            let mut h = [0u32; BUCKETS];
            for &p in &perm[bounds[c]..bounds[c + 1]] {
                h[digit(p, pass) as usize] += 1;
            }
            h
        })
        .collect();

    // Skip the pass outright when a single digit owns every element.
    let mut totals = [0u32; BUCKETS];
    for h in &hists {
        for d in 0..BUCKETS {
            totals[d] += h[d];
        }
    }
    if totals.iter().any(|&t| t as usize == n) {
        return true;
    }

    // Digit-major exclusive scan turns each chunk's histogram into its
    // private start offsets; chunk c's digit-d run lands directly after
    // every earlier chunk's digit-d run, which is what makes the scatter
    // stable for any chunk count.
    if nchunks >= SCAN_PAR_MIN_CHUNKS {
        // Wide pools: the nchunks x 256 merge matrix is big enough that a
        // single sequential scan serializes the pass. Each digit's column
        // is independent once its base offset is known, so compute digit
        // bases from the totals, then scan the columns in parallel.
        let mut bases = [0u32; BUCKETS];
        let mut running = 0u32;
        for (b, &t) in bases.iter_mut().zip(totals.iter()) {
            *b = running;
            running += t;
        }
        let cells = RawOut(hists.as_mut_ptr() as *mut u32);
        let cells_ref = &cells;
        (0..BUCKETS).into_par_iter().with_min_len(16).for_each(|d| {
            let mut running = bases[d];
            for c in 0..nchunks {
                // SAFETY: digit d's column touches exactly the cells
                // `c * BUCKETS + d`, disjoint across digits, and `hists`
                // is borrowed mutably for the whole region.
                unsafe {
                    let cell = cells_ref.0.add(c * BUCKETS + d);
                    let count = *cell;
                    *cell = running;
                    running += count;
                }
            }
        });
    } else {
        let mut running = 0u32;
        for d in 0..BUCKETS {
            for h in hists.iter_mut() {
                let count = h[d];
                h[d] = running;
                running += count;
            }
        }
    }

    let out = RawOut(buf.as_mut_ptr());
    let out_ref = &out;
    let hists_ref = &hists;
    let bounds_ref = &bounds;
    (0..nchunks).into_par_iter().with_min_len(1).for_each(|c| {
        let mut offs = hists_ref[c];
        for &p in &perm[bounds_ref[c]..bounds_ref[c + 1]] {
            let d = digit(p, pass) as usize;
            // SAFETY: the scan above assigns every (chunk, digit) run a
            // slice of `buf` disjoint from all others, and `buf` has
            // length n >= the sum of all runs.
            unsafe { out_ref.0.add(offs[d] as usize).write(p) };
            offs[d] += 1;
        }
    });
    false
}

/// Stably sort `perm` by precomputed packed keys (`keys[p]`), processing
/// only the bytes up to the highest set byte of `max_key`.
pub fn sort_perm_by_u128_keys(perm: &mut Vec<u32>, keys: &[u128], max_key: u128) {
    let passes = passes_for(max_key);
    sort_perm_by_digits(perm, passes, |p, pass| {
        (keys[p as usize] >> (8 * pass)) as u8
    });
}

/// Stably sort `perm` by a `u32` key, processing only the bytes up to the
/// highest set byte of `max_value`.
pub fn sort_perm_by_u32_key<K>(perm: &mut Vec<u32>, key: K, max_value: u32)
where
    K: Fn(u32) -> u32 + Sync,
{
    let passes = passes_for(max_value as u128);
    sort_perm_by_digits(perm, passes, |p, pass| (key(p) >> (8 * pass)) as u8);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::with_threads;

    fn splitmix(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn reference_perm(keys: &[u128]) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        perm.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]).then(a.cmp(&b)));
        perm
    }

    #[test]
    fn matches_stable_comparator_sort() {
        let mut rng = splitmix(7);
        for &n in &[0usize, 1, 2, 100, 5_000, 40_000] {
            let keys: Vec<u128> = (0..n).map(|_| (rng() % 10_000) as u128).collect();
            let max = keys.iter().copied().max().unwrap_or(0);
            let mut perm: Vec<u32> = (0..n as u32).collect();
            sort_perm_by_u128_keys(&mut perm, &keys, max);
            assert_eq!(perm, reference_perm(&keys), "n = {n}");
        }
    }

    #[test]
    fn identical_result_for_any_thread_count() {
        let mut rng = splitmix(42);
        let keys: Vec<u128> = (0..60_000)
            .map(|_| (rng() as u128) << 64 | rng() as u128)
            .collect();
        let max = keys.iter().copied().max().unwrap();
        let expect = reference_perm(&keys);
        for threads in [1usize, 2, 3, 4, 8] {
            let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
            with_threads(threads, || sort_perm_by_u128_keys(&mut perm, &keys, max));
            assert_eq!(perm, expect, "threads = {threads}");
        }
    }

    #[test]
    fn wide_pools_use_the_parallel_scan_merge() {
        // Enough elements for >= SCAN_PAR_MIN_CHUNKS per-chunk histograms
        // at 48 threads, so the digit-major merge takes the parallel
        // per-column path and must still produce the stable order.
        let mut rng = splitmix(11);
        let n = 48 * super::MIN_CHUNK;
        let keys: Vec<u128> = (0..n).map(|_| (rng() as u32) as u128).collect();
        let max = keys.iter().copied().max().unwrap();
        let expect = reference_perm(&keys);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        with_threads(48, || sort_perm_by_u128_keys(&mut perm, &keys, max));
        assert_eq!(perm, expect);
    }

    #[test]
    fn u32_key_sort_is_stable() {
        // Many duplicates: stability means ties stay in index order.
        let keys: Vec<u32> = (0..50_000u32).map(|i| i % 17).collect();
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        with_threads(4, || {
            sort_perm_by_u32_key(&mut perm, |p| keys[p as usize], 16)
        });
        for w in perm.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (ka, kb) = (keys[a as usize], keys[b as usize]);
            assert!(ka < kb || (ka == kb && a < b));
        }
    }

    #[test]
    fn skips_constant_digit_passes() {
        // All keys equal: every pass is skippable and the permutation must
        // come back untouched (stable sort of a constant key).
        let keys = vec![0xABu128; 30_000];
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        let expect = perm.clone();
        with_threads(4, || sort_perm_by_u128_keys(&mut perm, &keys, 0xAB));
        assert_eq!(perm, expect);
    }

    #[test]
    fn zero_max_key_is_a_no_op() {
        let mut perm: Vec<u32> = vec![3, 1, 2];
        sort_perm_by_u128_keys(&mut perm, &[0, 0, 0, 0], 0);
        assert_eq!(perm, vec![3, 1, 2]);
    }

    #[test]
    fn helpers_compute_widths() {
        assert_eq!(passes_for(0), 0);
        assert_eq!(passes_for(1), 1);
        assert_eq!(passes_for(255), 1);
        assert_eq!(passes_for(256), 2);
        assert_eq!(passes_for(u128::MAX), 16);
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(u32::MAX), 32);
    }
}
