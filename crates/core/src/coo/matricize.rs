//! Mode-`n` matricization (unfolding) — `X_(n)` in the paper's §2.5
//! definition of Mttkrp. The suite's kernels deliberately avoid
//! materializing unfoldings ("our implementations directly operate on
//! sparse tensor elements to avoid the tensor-matrix transformations"),
//! but the explicit transform is useful for cross-checking kernels and for
//! interoperating with sparse-matrix code.

use crate::error::{Result, TensorError};
use crate::scalar::Scalar;
use crate::shape::Shape;

use super::{CooTensor, SortState};

/// Unfold a tensor along `mode` into a sparse `I_n x prod(other dims)`
/// matrix, using Kolda & Bader's column ordering: the remaining modes vary
/// fastest in ascending mode order.
///
/// Fails with [`TensorError::SizeOverflow`] if the flattened column space
/// exceeds the 32-bit index range (hypersparse tensors unfold into
/// astronomically wide matrices — exactly why the suite's kernels avoid
/// this transform).
pub fn matricize<S: Scalar>(x: &CooTensor<S>, mode: usize) -> Result<CooTensor<S>> {
    x.shape().check_mode(mode)?;
    let order = x.order();
    // Column strides: ascending modes (excluding `mode`), earlier modes
    // vary fastest.
    let mut cols: u64 = 1;
    let mut strides = vec![0u64; order];
    for m in 0..order {
        if m == mode {
            continue;
        }
        strides[m] = cols;
        cols = cols
            .checked_mul(x.shape().dim(m) as u64)
            .ok_or(TensorError::SizeOverflow)?;
    }
    if cols > u32::MAX as u64 {
        return Err(TensorError::SizeOverflow);
    }

    let m = x.nnz();
    let mut rows = Vec::with_capacity(m);
    let mut colinds = Vec::with_capacity(m);
    for i in 0..m {
        rows.push(x.mode_inds(mode)[i]);
        let mut c: u64 = 0;
        for md in 0..order {
            if md != mode {
                c += x.mode_inds(md)[i] as u64 * strides[md];
            }
        }
        colinds.push(c as u32);
    }
    Ok(CooTensor::from_parts_unchecked(
        Shape::new(vec![x.shape().dim(mode), cols as u32]),
        vec![rows, colinds],
        x.vals().to_vec(),
        SortState::Unsorted,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![2, 3, 4]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![1, 2, 3], 2.0),
                (vec![0, 1, 2], 3.0),
                (vec![1, 0, 1], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn mode0_unfolding_matches_kolda_ordering() {
        // X_(0) is 2 x 12 with column j + 3*k (mode 1 fastest).
        let m = matricize(&sample(), 0).unwrap();
        assert_eq!(m.shape().dims(), &[2, 12]);
        let map = m.to_map();
        assert_eq!(map[&vec![0, 0]], 1.0); // (0,0,0)
        assert_eq!(map[&vec![1, 2 + 3 * 3]], 2.0); // (1,2,3) -> col 11
        assert_eq!(map[&vec![0, 1 + 3 * 2]], 3.0); // (0,1,2) -> col 7
        assert_eq!(map[&vec![1, 3]], 4.0); // (1,0,1) -> col 3
    }

    #[test]
    fn middle_mode_unfolding() {
        // X_(1) is 3 x 8 with column i + 2*k (mode 0 fastest).
        let m = matricize(&sample(), 1).unwrap();
        assert_eq!(m.shape().dims(), &[3, 8]);
        let map = m.to_map();
        assert_eq!(map[&vec![2, 1 + 2 * 3]], 2.0); // (1,2,3) -> row 2, col 7
    }

    #[test]
    fn unfolding_preserves_values_and_count() {
        let x = sample();
        for mode in 0..3 {
            let m = matricize(&x, mode).unwrap();
            assert_eq!(m.nnz(), x.nnz());
            let sum: f64 = m.vals().iter().sum();
            let expect: f64 = x.vals().iter().sum();
            assert_eq!(sum, expect);
            assert!(m.validate().is_ok());
        }
    }

    #[test]
    fn hypersparse_unfolding_overflows_cleanly() {
        // (2^20)^3 columns exceed u32: expect SizeOverflow, not wraparound.
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![1 << 20, 1 << 20, 1 << 20]),
            vec![(vec![1, 2, 3], 1.0)],
        )
        .unwrap();
        assert!(matches!(matricize(&x, 0), Err(TensorError::SizeOverflow)));
    }

    #[test]
    fn matricized_spmv_equals_ttv() {
        // X_(0) * vec(outer of ones) == Ttv with ones in both other modes.
        let x = sample();
        let m = matricize(&x, 0).unwrap();
        // Row sums of X_(0) equal contracting modes 1 and 2 with ones.
        let mut row_sums = [0.0f64; 2];
        for (c, v) in m.iter_entries() {
            row_sums[c[0] as usize] += v;
        }
        let ones3 = crate::dense::DenseVector::constant(3, 1.0);
        let ones4 = crate::dense::DenseVector::constant(4, 1.0);
        let t = crate::kernels::ttv::ttv(&x, &ones4, 2).unwrap();
        let t = crate::kernels::ttv::ttv(&t, &ones3, 1).unwrap();
        for (c, v) in t.iter_entries() {
            assert!((row_sums[c[0] as usize] - v).abs() < 1e-12);
        }
    }
}
