//! Nonzero ordering: lexicographic (per mode precedence) and Morton (block)
//! sorts, with sort-state tracking so kernels can skip redundant re-sorts.

use rayon::prelude::*;

use crate::hicoo::morton;
use crate::scalar::Scalar;

use super::CooTensor;

/// Tracks how the nonzeros of a [`CooTensor`] are currently ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortState {
    /// No known ordering.
    Unsorted,
    /// Lexicographic by the given mode precedence (first entry varies
    /// slowest).
    Lexicographic(Vec<usize>),
    /// Morton (Z-order) over block coordinates with the given block bits,
    /// lexicographic within each block — the HiCOO construction order.
    Morton {
        /// log2 of the block edge length.
        block_bits: u8,
    },
}

impl SortState {
    /// `true` if the state is lexicographic with exactly this precedence.
    pub fn is_lexicographic(&self, mode_order: &[usize]) -> bool {
        matches!(self, SortState::Lexicographic(o) if o == mode_order)
    }

    /// `true` if sorted with `mode` innermost and the remaining modes in
    /// ascending order (the fiber-kernel requirement).
    pub fn is_mode_last(&self, order: usize, mode: usize) -> bool {
        self.is_lexicographic(&crate::shape::mode_last_order(order, mode))
    }

    /// `true` if Morton-sorted with the given block bits.
    pub fn is_morton(&self, block_bits: u8) -> bool {
        matches!(self, SortState::Morton { block_bits: b } if *b == block_bits)
    }
}

/// Apply a gather permutation to every array of the tensor.
fn apply_perm<S: Scalar>(t: &mut CooTensor<S>, perm: &[u32]) {
    let gather_u32 =
        |src: &[u32]| -> Vec<u32> { perm.par_iter().map(|&p| src[p as usize]).collect() };
    for m in 0..t.order() {
        t.inds[m] = gather_u32(&t.inds[m]);
    }
    t.vals = perm.par_iter().map(|&p| t.vals[p as usize]).collect();
}

pub(super) fn sort_lexicographic<S: Scalar>(t: &mut CooTensor<S>, mode_order: &[usize]) {
    assert_eq!(
        mode_order.len(),
        t.order(),
        "mode order must be a permutation"
    );
    if t.sort.is_lexicographic(mode_order) {
        return;
    }
    let m = t.nnz();
    let mut perm: Vec<u32> = (0..m as u32).collect();
    {
        let inds = &t.inds;
        perm.par_sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for &mode in mode_order {
                let arr = &inds[mode];
                match arr[a].cmp(&arr[b]) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    apply_perm(t, &perm);
    t.sort = SortState::Lexicographic(mode_order.to_vec());
}

pub(super) fn sort_morton<S: Scalar>(t: &mut CooTensor<S>, block_bits: u8) {
    if t.sort.is_morton(block_bits) {
        return;
    }
    let m = t.nnz();
    let order = t.order();
    let mut perm: Vec<u32> = (0..m as u32).collect();

    // Fast path: orders <= 4 get packed 128-bit Morton block keys; beyond
    // that we fall back to the comparison-based most-significant-bit trick.
    if order <= 4 {
        let keys: Vec<u128> = (0..m)
            .into_par_iter()
            .map(|i| {
                let mut bc = [0u32; 4];
                for (mode, arr) in t.inds.iter().enumerate() {
                    bc[mode] = arr[i] >> block_bits;
                }
                morton::interleave_key(&bc[..order])
            })
            .collect();
        let inds = &t.inds;
        perm.par_sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            keys[a].cmp(&keys[b]).then_with(|| {
                for arr in inds {
                    match arr[a].cmp(&arr[b]) {
                        std::cmp::Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                std::cmp::Ordering::Equal
            })
        });
    } else {
        let inds = &t.inds;
        perm.par_sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            let ba = |mode: usize| inds[mode][a] >> block_bits;
            let bb = |mode: usize| inds[mode][b] >> block_bits;
            let bca: Vec<u32> = (0..order).map(ba).collect();
            let bcb: Vec<u32> = (0..order).map(bb).collect();
            morton::morton_cmp(&bca, &bcb).then_with(|| {
                for arr in inds {
                    match arr[a].cmp(&arr[b]) {
                        std::cmp::Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                std::cmp::Ordering::Equal
            })
        });
    }

    apply_perm(t, &perm);
    t.sort = SortState::Morton { block_bits };
}

#[cfg(test)]
mod tests {
    use crate::coo::CooTensor;
    use crate::shape::Shape;

    fn unsorted() -> CooTensor<f32> {
        CooTensor::from_parts(
            Shape::new(vec![4, 4, 4]),
            vec![vec![3, 0, 1, 0], vec![1, 2, 0, 0], vec![2, 1, 3, 0]],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn lexicographic_default_order() {
        let mut t = unsorted();
        t.sort_lexicographic(&[0, 1, 2]);
        assert_eq!(t.mode_inds(0), &[0, 0, 1, 3]);
        assert_eq!(t.mode_inds(1), &[0, 2, 0, 1]);
        assert_eq!(t.vals(), &[4.0, 2.0, 3.0, 1.0]);
        assert!(t.sort_state().is_lexicographic(&[0, 1, 2]));
    }

    #[test]
    fn mode_last_sort_groups_fibers() {
        let mut t = unsorted();
        t.sort_mode_last(0); // order [1, 2, 0]
        assert!(t.sort_state().is_mode_last(3, 0));
        // Sorted by (j, k, i): entries (0,0,0,i=0),(0,3,i=1),(1,2,i=3),(2,1,i=0)
        assert_eq!(t.mode_inds(1), &[0, 0, 1, 2]);
        assert_eq!(t.mode_inds(2), &[0, 3, 2, 1]);
        assert_eq!(t.mode_inds(0), &[0, 1, 3, 0]);
    }

    #[test]
    fn sort_is_idempotent_and_tracked() {
        let mut t = unsorted();
        t.sort_lexicographic(&[0, 1, 2]);
        let snapshot = t.clone();
        t.sort_lexicographic(&[0, 1, 2]); // no-op
        assert_eq!(t, snapshot);
    }

    #[test]
    fn morton_sort_groups_blocks() {
        // Block bits 1 => 2x2x2 blocks; entries in the same block must be
        // adjacent after the sort.
        let mut t = CooTensor::from_parts(
            Shape::new(vec![4, 4, 4]),
            vec![vec![0, 3, 1, 2], vec![0, 3, 1, 2], vec![0, 3, 1, 2]],
            vec![1.0f32, 2.0, 3.0, 4.0],
        )
        .unwrap();
        t.sort_morton(1);
        assert!(t.sort_state().is_morton(1));
        // Block coords: (0,0,0) for rows 0 and 1-as-(1,1,1)? No: (1,1,1)>>1=(0,0,0),
        // (2,2,2)>>1=(1,1,1), (3,3,3)>>1=(1,1,1). So order: {0,1} block then {2,3}.
        assert_eq!(t.mode_inds(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn values_follow_their_coordinates() {
        let mut t = unsorted();
        let before = t.to_map();
        t.sort_morton(1);
        assert_eq!(before, t.to_map());
        t.sort_lexicographic(&[2, 1, 0]);
        assert_eq!(before, t.to_map());
    }
}
