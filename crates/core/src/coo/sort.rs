//! Nonzero ordering: lexicographic (per mode precedence) and Morton (block)
//! sorts, with sort-state tracking so kernels can skip redundant re-sorts.

use rayon::prelude::*;

use crate::hicoo::morton;
use crate::radix;
use crate::scalar::Scalar;

use super::CooTensor;

/// Backend selection for the COO sorts.
///
/// The default pipeline packs coordinates into little-endian integer keys
/// and runs the parallel stable LSD radix engine (`crate::radix`); the
/// comparator backend is the parallel merge sort over the same ordering
/// with an explicit index tie-break. Both produce the *identical*
/// permutation for every input (ties resolve to ascending original
/// position), which is what lets `verify` cross-check one against the
/// other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortAlgo {
    /// Radix where a packed-key formulation exists, comparator otherwise.
    #[default]
    Auto,
    /// Same as `Auto` (named for benchmark readability): radix whenever a
    /// packed-key formulation exists.
    Radix,
    /// Force the comparator-based parallel merge sort.
    Comparator,
}

impl SortAlgo {
    fn use_radix(self) -> bool {
        !matches!(self, SortAlgo::Comparator)
    }
}

/// Tracks how the nonzeros of a [`CooTensor`] are currently ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortState {
    /// No known ordering.
    Unsorted,
    /// Lexicographic by the given mode precedence (first entry varies
    /// slowest).
    Lexicographic(Vec<usize>),
    /// Morton (Z-order) over block coordinates with the given block bits,
    /// lexicographic within each block — the HiCOO construction order.
    Morton {
        /// log2 of the block edge length.
        block_bits: u8,
    },
}

impl SortState {
    /// `true` if the state is lexicographic with exactly this precedence.
    pub fn is_lexicographic(&self, mode_order: &[usize]) -> bool {
        matches!(self, SortState::Lexicographic(o) if o == mode_order)
    }

    /// `true` if sorted with `mode` innermost and the remaining modes in
    /// ascending order (the fiber-kernel requirement).
    pub fn is_mode_last(&self, order: usize, mode: usize) -> bool {
        self.is_lexicographic(&crate::shape::mode_last_order(order, mode))
    }

    /// `true` if Morton-sorted with the given block bits.
    pub fn is_morton(&self, block_bits: u8) -> bool {
        matches!(self, SortState::Morton { block_bits: b } if *b == block_bits)
    }
}

/// Apply a gather permutation to every array of the tensor.
fn apply_perm<S: Scalar>(t: &mut CooTensor<S>, perm: &[u32]) {
    let gather_u32 =
        |src: &[u32]| -> Vec<u32> { perm.par_iter().map(|&p| src[p as usize]).collect() };
    for m in 0..t.order() {
        t.inds[m] = gather_u32(&t.inds[m]);
    }
    t.vals = perm.par_iter().map(|&p| t.vals[p as usize]).collect();
}

pub(super) fn sort_lexicographic<S: Scalar>(
    t: &mut CooTensor<S>,
    mode_order: &[usize],
    algo: SortAlgo,
) {
    assert_eq!(
        mode_order.len(),
        t.order(),
        "mode order must be a permutation"
    );
    if t.sort.is_lexicographic(mode_order) {
        return;
    }
    let _span = tenbench_obs::span!("coo.sort_lex");
    let m = t.nnz();
    let mut perm: Vec<u32> = (0..m as u32).collect();
    if algo.use_radix() {
        lex_perm_radix(&t.inds, t.shape.dims(), mode_order, &mut perm);
    } else {
        let inds = &t.inds;
        perm.par_sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for &mode in mode_order {
                let arr = &inds[mode];
                match arr[a].cmp(&arr[b]) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            // Deterministic tie-break so both backends agree exactly.
            a.cmp(&b)
        });
    }
    apply_perm(t, &perm);
    t.sort = SortState::Lexicographic(mode_order.to_vec());
}

/// Radix permutation for a lexicographic sort: pack the coordinates along
/// `mode_order` into one little-endian key when they fit 128 bits (always
/// true for order <= 4), otherwise run one stable per-mode radix pass from
/// the least significant mode up.
fn lex_perm_radix(inds: &[Vec<u32>], dims: &[u32], mode_order: &[usize], perm: &mut Vec<u32>) {
    // Per-mode key width; a mode of extent 1 contributes nothing.
    let width = |mode: usize| radix::bits_for(dims[mode].saturating_sub(1)) as usize;
    let total_bits: usize = mode_order.iter().map(|&mode| width(mode)).sum();
    if total_bits == 0 {
        return;
    }
    if total_bits <= 128 {
        let keys: Vec<u128> = (0..perm.len())
            .into_par_iter()
            .with_min_len(4096)
            .map(|i| {
                let mut key = 0u128;
                for &mode in mode_order {
                    key = (key << width(mode)) | inds[mode][i] as u128;
                }
                key
            })
            .collect();
        let max_key = if total_bits == 128 {
            u128::MAX
        } else {
            (1u128 << total_bits) - 1
        };
        radix::sort_perm_by_u128_keys(perm, &keys, max_key);
    } else {
        for &mode in mode_order.iter().rev() {
            let arr = &inds[mode];
            radix::sort_perm_by_u32_key(perm, |p| arr[p as usize], dims[mode].saturating_sub(1));
        }
    }
}

pub(super) fn sort_morton<S: Scalar>(t: &mut CooTensor<S>, block_bits: u8, algo: SortAlgo) {
    if t.sort.is_morton(block_bits) {
        return;
    }
    let _span = tenbench_obs::span!("coo.sort_morton");
    let m = t.nnz();
    let order = t.order();
    let mut perm: Vec<u32> = (0..m as u32).collect();

    if algo.use_radix() && morton_radix_fits(t.shape.dims(), block_bits) {
        morton_perm_radix(&t.inds, t.shape.dims(), block_bits, &mut perm);
    } else if order <= 4 {
        // Packed 128-bit Morton block keys, comparator merge sort.
        let keys: Vec<u128> = (0..m)
            .into_par_iter()
            .map(|i| {
                let mut bc = [0u32; 4];
                for (mode, arr) in t.inds.iter().enumerate() {
                    bc[mode] = arr[i] >> block_bits;
                }
                morton::interleave_key(&bc[..order])
            })
            .collect();
        let inds = &t.inds;
        perm.par_sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            keys[a]
                .cmp(&keys[b])
                .then_with(|| {
                    for arr in inds {
                        match arr[a].cmp(&arr[b]) {
                            std::cmp::Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    std::cmp::Ordering::Equal
                })
                // Deterministic tie-break so both backends agree exactly.
                .then(a.cmp(&b))
        });
    } else {
        // Orders above 4: the comparison-based most-significant-bit trick.
        let inds = &t.inds;
        perm.par_sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            let ba = |mode: usize| inds[mode][a] >> block_bits;
            let bb = |mode: usize| inds[mode][b] >> block_bits;
            let bca: Vec<u32> = (0..order).map(ba).collect();
            let bcb: Vec<u32> = (0..order).map(bb).collect();
            morton::morton_cmp(&bca, &bcb)
                .then_with(|| {
                    for arr in inds {
                        match arr[a].cmp(&arr[b]) {
                            std::cmp::Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    std::cmp::Ordering::Equal
                })
                .then(a.cmp(&b))
        });
    }

    apply_perm(t, &perm);
    t.sort = SortState::Morton { block_bits };
}

/// `true` if the Morton block key plus per-mode element offsets pack into
/// one 128-bit key (always for the paper's order-3/4 datasets).
fn morton_radix_fits(dims: &[u32], block_bits: u8) -> bool {
    let order = dims.len();
    if order == 0 || order > 4 {
        return false;
    }
    let maxbits = morton_block_bits_needed(dims, block_bits);
    order * (maxbits + block_bits as usize) <= 128
}

/// Bits needed for the widest block coordinate any mode can produce.
fn morton_block_bits_needed(dims: &[u32], block_bits: u8) -> usize {
    dims.iter()
        .map(|&d| radix::bits_for(d.saturating_sub(1) >> block_bits) as usize)
        .max()
        .unwrap_or(0)
}

/// Radix permutation for the Morton sort: one packed key per nonzero —
/// interleaved block coordinates in the high bits, per-mode element
/// offsets (mode 0 most significant) in the low bits — sorted by the
/// parallel stable LSD engine. Identical ordering to the comparator path:
/// equal packed keys imply equal coordinates, which stability resolves to
/// ascending original position.
fn morton_perm_radix(inds: &[Vec<u32>], dims: &[u32], block_bits: u8, perm: &mut Vec<u32>) {
    let order = inds.len();
    let bb = block_bits as usize;
    let maxbits = morton_block_bits_needed(dims, block_bits);
    let emask = (1u32 << block_bits) - 1;
    let ebits_total = order * bb;
    let total_bits = order * maxbits + ebits_total;
    if total_bits == 0 {
        return;
    }
    let keys: Vec<u128> = (0..perm.len())
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| {
            let mut bc = [0u32; 4];
            let mut e = 0u128;
            for (mode, arr) in inds.iter().enumerate() {
                bc[mode] = arr[i] >> block_bits;
                e = (e << bb) | (arr[i] & emask) as u128;
            }
            (morton::interleave_key_bits(&bc[..order], maxbits) << ebits_total) | e
        })
        .collect();
    let max_key = if total_bits >= 128 {
        u128::MAX
    } else {
        (1u128 << total_bits) - 1
    };
    radix::sort_perm_by_u128_keys(perm, &keys, max_key);
}

#[cfg(test)]
mod tests {
    use crate::coo::CooTensor;
    use crate::shape::Shape;

    fn unsorted() -> CooTensor<f32> {
        CooTensor::from_parts(
            Shape::new(vec![4, 4, 4]),
            vec![vec![3, 0, 1, 0], vec![1, 2, 0, 0], vec![2, 1, 3, 0]],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn lexicographic_default_order() {
        let mut t = unsorted();
        t.sort_lexicographic(&[0, 1, 2]);
        assert_eq!(t.mode_inds(0), &[0, 0, 1, 3]);
        assert_eq!(t.mode_inds(1), &[0, 2, 0, 1]);
        assert_eq!(t.vals(), &[4.0, 2.0, 3.0, 1.0]);
        assert!(t.sort_state().is_lexicographic(&[0, 1, 2]));
    }

    #[test]
    fn mode_last_sort_groups_fibers() {
        let mut t = unsorted();
        t.sort_mode_last(0); // order [1, 2, 0]
        assert!(t.sort_state().is_mode_last(3, 0));
        // Sorted by (j, k, i): entries (0,0,0,i=0),(0,3,i=1),(1,2,i=3),(2,1,i=0)
        assert_eq!(t.mode_inds(1), &[0, 0, 1, 2]);
        assert_eq!(t.mode_inds(2), &[0, 3, 2, 1]);
        assert_eq!(t.mode_inds(0), &[0, 1, 3, 0]);
    }

    #[test]
    fn sort_is_idempotent_and_tracked() {
        let mut t = unsorted();
        t.sort_lexicographic(&[0, 1, 2]);
        let snapshot = t.clone();
        t.sort_lexicographic(&[0, 1, 2]); // no-op
        assert_eq!(t, snapshot);
    }

    #[test]
    fn morton_sort_groups_blocks() {
        // Block bits 1 => 2x2x2 blocks; entries in the same block must be
        // adjacent after the sort.
        let mut t = CooTensor::from_parts(
            Shape::new(vec![4, 4, 4]),
            vec![vec![0, 3, 1, 2], vec![0, 3, 1, 2], vec![0, 3, 1, 2]],
            vec![1.0f32, 2.0, 3.0, 4.0],
        )
        .unwrap();
        t.sort_morton(1);
        assert!(t.sort_state().is_morton(1));
        // Block coords: (0,0,0) for rows 0 and 1-as-(1,1,1)? No: (1,1,1)>>1=(0,0,0),
        // (2,2,2)>>1=(1,1,1), (3,3,3)>>1=(1,1,1). So order: {0,1} block then {2,3}.
        assert_eq!(t.mode_inds(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn values_follow_their_coordinates() {
        let mut t = unsorted();
        let before = t.to_map();
        t.sort_morton(1);
        assert_eq!(before, t.to_map());
        t.sort_lexicographic(&[2, 1, 0]);
        assert_eq!(before, t.to_map());
    }
}
