//! Multi-dense-mode semi-sparse COO — the general form of sCOO the paper
//! sketches ("sCOO stores the dense mode(s) as dense array(s)", §3.1).
//!
//! A TTM-chain densifies one mode per step, so after two products the
//! intermediate has *two* dense modes. [`MultiSemiSparseTensor`] holds any
//! number of dense modes as a dense stripe per sparse fiber, and its
//! [`MultiSemiSparseTensor::ttm`] contracts a further sparse mode without
//! ever expanding back to COO — the representation the Tucker TTM-chain
//! (§7 future work) needs to stay efficient.

use std::collections::BTreeMap;

use crate::dense::DenseMatrix;
use crate::error::{Result, TensorError};
use crate::scalar::Scalar;
use crate::shape::Shape;

use super::{CooTensor, SemiSparseTensor, SortState};

/// A sparse tensor with an arbitrary set of dense modes: one dense value
/// stripe (row-major over the dense modes in ascending mode order) per
/// distinct combination of sparse-mode indices.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSemiSparseTensor<S: Scalar> {
    shape: Shape,
    /// Dense modes, ascending.
    dense_modes: Vec<usize>,
    /// Per-mode index arrays; empty at dense modes, length `num_fibers()`
    /// at sparse modes.
    inds: Vec<Vec<u32>>,
    /// `num_fibers() * stripe_len()` values.
    vals: Vec<S>,
}

impl<S: Scalar> MultiSemiSparseTensor<S> {
    /// Wrap a fully sparse tensor (no dense modes; every nonzero is its own
    /// length-1 stripe).
    pub fn from_coo(x: &CooTensor<S>) -> Self {
        MultiSemiSparseTensor {
            shape: x.shape().clone(),
            dense_modes: Vec::new(),
            inds: x.inds().to_vec(),
            vals: x.vals().to_vec(),
        }
    }

    /// Upgrade a single-dense-mode sCOO tensor.
    pub fn from_scoo(x: &SemiSparseTensor<S>) -> Self {
        MultiSemiSparseTensor {
            shape: x.shape().clone(),
            dense_modes: vec![x.dense_mode()],
            inds: x.inds().to_vec(),
            vals: x.vals().to_vec(),
        }
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// The dense modes (ascending).
    #[inline]
    pub fn dense_modes(&self) -> &[usize] {
        &self.dense_modes
    }

    /// The sparse modes (ascending).
    pub fn sparse_modes(&self) -> Vec<usize> {
        (0..self.order())
            .filter(|m| !self.dense_modes.contains(m))
            .collect()
    }

    /// Product of the dense modes' extents (1 when fully sparse).
    pub fn stripe_len(&self) -> usize {
        self.dense_modes
            .iter()
            .map(|&m| self.shape.dim(m) as usize)
            .product()
    }

    /// Number of sparse fibers.
    pub fn num_fibers(&self) -> usize {
        match self.sparse_modes().first() {
            Some(&m) => self.inds[m].len(),
            None => usize::from(!self.vals.is_empty()),
        }
    }

    /// The dense stripe of fiber `f`.
    pub fn fiber_vals(&self, f: usize) -> &[S] {
        let len = self.stripe_len();
        &self.vals[f * len..(f + 1) * len]
    }

    /// Contract sparse `mode` with an `I_mode x R` matrix; `mode` becomes
    /// dense. Fibers that agree on every other sparse mode merge into one
    /// output fiber whose stripe grows by a factor-`R` axis.
    pub fn ttm(&self, u: &DenseMatrix<S>, mode: usize) -> Result<MultiSemiSparseTensor<S>> {
        self.shape.check_mode(mode)?;
        if self.dense_modes.contains(&mode) {
            return Err(TensorError::InvalidStructure(format!(
                "mode {mode} is already dense"
            )));
        }
        if u.rows() != self.shape.dim(mode) as usize {
            return Err(TensorError::OperandLengthMismatch {
                expected: self.shape.dim(mode) as usize,
                actual: u.rows(),
            });
        }
        let r = u.cols();
        if r == 0 {
            return Err(TensorError::OperandLengthMismatch {
                expected: 1,
                actual: 0,
            });
        }

        let out_shape = self.shape.with_mode_size(mode, r as u32)?;
        let mut out_dense = self.dense_modes.clone();
        let insert_at = out_dense.partition_point(|&m| m < mode);
        out_dense.insert(insert_at, mode);

        // Group fibers by the remaining sparse modes.
        let keep: Vec<usize> = self
            .sparse_modes()
            .into_iter()
            .filter(|&m| m != mode)
            .collect();
        let mf = self.num_fibers();
        let mut order: Vec<u32> = (0..mf as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for &m in &keep {
                match self.inds[m][a].cmp(&self.inds[m][b]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });

        let in_stripe = self.stripe_len();
        let out_stripe = in_stripe * r;
        // Old stripe layout: dense modes ascending; the new mode is
        // inserted at position `insert_at`, so an old stripe index splits
        // into (hi, lo) around it: new index = (hi * R + k) * lo_len + lo.
        let lo_len: usize = self.dense_modes[insert_at..]
            .iter()
            .map(|&m| self.shape.dim(m) as usize)
            .product();
        let hi_len = in_stripe / lo_len.max(1);
        debug_assert_eq!(hi_len * lo_len, in_stripe.max(1));

        let mut out_inds: Vec<Vec<u32>> = vec![Vec::new(); self.order()];
        let mut out_vals: Vec<S> = Vec::new();
        let mut g0 = 0usize;
        while g0 < mf {
            // Extent of this output-fiber group.
            let mut g1 = g0 + 1;
            let same_group =
                |a: usize, b: usize| keep.iter().all(|&m| self.inds[m][a] == self.inds[m][b]);
            while g1 < mf && same_group(order[g0] as usize, order[g1] as usize) {
                g1 += 1;
            }
            let rep = order[g0] as usize;
            for &m in &keep {
                out_inds[m].push(self.inds[m][rep]);
            }
            let base = out_vals.len();
            out_vals.resize(base + out_stripe, S::ZERO);
            for &fi in &order[g0..g1] {
                let fi = fi as usize;
                let k = self.inds[mode][fi] as usize;
                let urow = u.row(k);
                let stripe = self.fiber_vals(fi);
                for hi in 0..hi_len {
                    for (kk, &uv) in urow.iter().enumerate() {
                        let dst = base + (hi * r + kk) * lo_len;
                        let src = hi * lo_len;
                        for lo in 0..lo_len {
                            out_vals[dst + lo] += stripe[src + lo] * uv;
                        }
                    }
                }
            }
            g0 = g1;
        }

        Ok(MultiSemiSparseTensor {
            shape: out_shape,
            dense_modes: out_dense,
            inds: out_inds,
            vals: out_vals,
        })
    }

    /// Contract one mode with a vector. A *sparse* mode contracts like Ttv
    /// (fibers agreeing on the other sparse modes merge); a *dense* mode
    /// contracts inside every stripe (the stripe loses that axis). Both
    /// paths keep the result semi-sparse, so Tucker-style pipelines can mix
    /// Ttm and Ttv steps freely.
    pub fn ttv(&self, v: &crate::dense::DenseVector<S>, mode: usize) -> Result<Self> {
        self.shape.check_mode(mode)?;
        if self.order() < 2 {
            return Err(TensorError::OrderTooSmall {
                min: 2,
                actual: self.order(),
            });
        }
        if v.len() != self.shape.dim(mode) as usize {
            return Err(TensorError::OperandLengthMismatch {
                expected: self.shape.dim(mode) as usize,
                actual: v.len(),
            });
        }
        let out_shape = self.shape.without_mode(mode)?;
        // Mode indices shift down past the removed mode.
        let shift = |m: usize| if m > mode { m - 1 } else { m };

        if let Some(dpos) = self.dense_modes.iter().position(|&m| m == mode) {
            // Dense-mode contraction: reduce that stripe axis.
            let lo_len: usize = self.dense_modes[dpos + 1..]
                .iter()
                .map(|&m| self.shape.dim(m) as usize)
                .product();
            let d = self.shape.dim(mode) as usize;
            let in_stripe = self.stripe_len();
            let out_stripe = in_stripe / d;
            let mf = self.num_fibers();
            let mut out_vals = vec![S::ZERO; mf * out_stripe];
            for f in 0..mf {
                let src = self.fiber_vals(f);
                let dst = &mut out_vals[f * out_stripe..(f + 1) * out_stripe];
                for (o, dv) in dst.iter_mut().enumerate() {
                    let (hi, lo) = (o / lo_len, o % lo_len);
                    let mut acc = S::ZERO;
                    for (k, vk) in v.as_slice().iter().enumerate() {
                        acc += src[(hi * d + k) * lo_len + lo] * *vk;
                    }
                    *dv = acc;
                }
            }
            let mut out_inds: Vec<Vec<u32>> = vec![Vec::new(); out_shape.order()];
            for m in self.sparse_modes() {
                out_inds[shift(m)] = self.inds[m].clone();
            }
            let out_dense: Vec<usize> = self
                .dense_modes
                .iter()
                .filter(|&&m| m != mode)
                .map(|&m| shift(m))
                .collect();
            return Ok(MultiSemiSparseTensor {
                shape: out_shape,
                dense_modes: out_dense,
                inds: out_inds,
                vals: out_vals,
            });
        }

        // Sparse-mode contraction: merge fibers over the remaining sparse
        // modes, scaling each stripe by v[k].
        let keep: Vec<usize> = self
            .sparse_modes()
            .into_iter()
            .filter(|&m| m != mode)
            .collect();
        let mf = self.num_fibers();
        let mut order: Vec<u32> = (0..mf as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            for &m in &keep {
                match self.inds[m][a].cmp(&self.inds[m][b]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        let stripe = self.stripe_len();
        let mut out_inds: Vec<Vec<u32>> = vec![Vec::new(); out_shape.order()];
        let mut out_vals: Vec<S> = Vec::new();
        let mut g0 = 0usize;
        while g0 < mf {
            let mut g1 = g0 + 1;
            let same =
                |a: usize, b: usize| keep.iter().all(|&m| self.inds[m][a] == self.inds[m][b]);
            while g1 < mf && same(order[g0] as usize, order[g1] as usize) {
                g1 += 1;
            }
            let rep = order[g0] as usize;
            for &m in &keep {
                out_inds[shift(m)].push(self.inds[m][rep]);
            }
            let base = out_vals.len();
            out_vals.resize(base + stripe, S::ZERO);
            for &fi in &order[g0..g1] {
                let fi = fi as usize;
                let vk = v[self.inds[mode][fi] as usize];
                for (o, &s) in out_vals[base..].iter_mut().zip(self.fiber_vals(fi)) {
                    *o += s * vk;
                }
            }
            g0 = g1;
        }
        let out_dense: Vec<usize> = self.dense_modes.iter().map(|&m| shift(m)).collect();
        Ok(MultiSemiSparseTensor {
            shape: out_shape,
            dense_modes: out_dense,
            inds: out_inds,
            vals: out_vals,
        })
    }

    /// Expand to COO (keeps every stored stripe value).
    pub fn to_coo(&self) -> CooTensor<S> {
        let order = self.order();
        let stripe = self.stripe_len();
        let mf = self.num_fibers();
        let mut inds: Vec<Vec<u32>> = vec![Vec::with_capacity(mf * stripe); order];
        let sparse = self.sparse_modes();
        // Unravel stride per dense mode (row-major, ascending).
        let mut strides = vec![0usize; self.dense_modes.len()];
        {
            let mut acc = 1usize;
            for (i, &m) in self.dense_modes.iter().enumerate().rev() {
                strides[i] = acc;
                acc *= self.shape.dim(m) as usize;
            }
        }
        for f in 0..mf {
            for s in 0..stripe {
                for &m in &sparse {
                    inds[m].push(self.inds[m][f]);
                }
                for (i, &m) in self.dense_modes.iter().enumerate() {
                    let c = (s / strides[i]) % self.shape.dim(m) as usize;
                    inds[m].push(c as u32);
                }
            }
        }
        // Mode arrays were pushed per entry but possibly out of mode order;
        // rebuild in mode order lengths are equal so this is fine.
        CooTensor::from_parts_unchecked(
            self.shape.clone(),
            inds,
            self.vals.clone(),
            SortState::Unsorted,
        )
    }

    /// Coordinate → value map of numerically nonzero values (test helper).
    pub fn to_map(&self) -> BTreeMap<Vec<u32>, f64> {
        let mut m = self.to_coo().to_map();
        m.retain(|_, v| *v != 0.0);
        m
    }

    /// Storage bytes: sparse index arrays plus the stripes.
    pub fn storage_bytes(&self) -> u64 {
        let mf = self.num_fibers() as u64;
        4 * self.sparse_modes().len() as u64 * mf + self.vals.len() as u64 * S::BYTES
    }

    /// Check structural invariants.
    pub fn validate(&self) -> Result<()> {
        let mf = self.num_fibers();
        for (m, arr) in self.inds.iter().enumerate() {
            if self.dense_modes.contains(&m) {
                if !arr.is_empty() {
                    return Err(TensorError::InvalidStructure(format!(
                        "dense mode {m} carries indices"
                    )));
                }
            } else {
                if arr.len() != mf {
                    return Err(TensorError::InvalidStructure(format!(
                        "mode {m} has {} indices, expected {mf}",
                        arr.len()
                    )));
                }
                let dim = self.shape.dim(m);
                if let Some(&bad) = arr.iter().find(|&&i| i >= dim) {
                    return Err(TensorError::IndexOutOfBounds {
                        mode: m,
                        index: bad,
                        dim,
                    });
                }
            }
        }
        if self.vals.len() != mf * self.stripe_len() {
            return Err(TensorError::InvalidStructure(format!(
                "{} values for {mf} fibers of stripe {}",
                self.vals.len(),
                self.stripe_len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![1, 2, 1], 3.0),
                (vec![2, 3, 0], 4.0),
                (vec![2, 3, 4], 5.0),
            ],
        )
        .unwrap()
    }

    /// Dense reference Ttm on a map representation.
    fn ref_ttm(
        m: &BTreeMap<Vec<u32>, f64>,
        u: &DenseMatrix<f64>,
        mode: usize,
    ) -> BTreeMap<Vec<u32>, f64> {
        let mut out = BTreeMap::new();
        for (c, v) in m {
            for r in 0..u.cols() {
                let mut k = c.clone();
                k[mode] = r as u32;
                *out.entry(k).or_insert(0.0) += v * u[(c[mode] as usize, r)];
            }
        }
        out.retain(|_, v| *v != 0.0);
        out
    }

    #[test]
    fn from_coo_round_trips() {
        let x = sample();
        let ms = MultiSemiSparseTensor::from_coo(&x);
        assert!(ms.validate().is_ok());
        assert_eq!(ms.stripe_len(), 1);
        assert_eq!(ms.num_fibers(), x.nnz());
        assert_eq!(ms.to_map(), x.to_map());
    }

    #[test]
    fn single_ttm_matches_reference() {
        let x = sample();
        let u = DenseMatrix::from_fn(5, 2, |i, j| (i + j + 1) as f64);
        let ms = MultiSemiSparseTensor::from_coo(&x).ttm(&u, 2).unwrap();
        assert!(ms.validate().is_ok());
        assert_eq!(ms.dense_modes(), &[2]);
        assert_eq!(ms.to_map(), ref_ttm(&x.to_map(), &u, 2));
    }

    #[test]
    fn chained_ttm_accumulates_dense_modes() {
        let x = sample();
        let u2 = DenseMatrix::from_fn(5, 2, |i, j| (i + j + 1) as f64);
        let u0 = DenseMatrix::from_fn(3, 3, |i, j| (2 * i + j) as f64 * 0.5);
        let step1 = MultiSemiSparseTensor::from_coo(&x).ttm(&u2, 2).unwrap();
        let step2 = step1.ttm(&u0, 0).unwrap();
        assert_eq!(step2.dense_modes(), &[0, 2]);
        assert!(step2.validate().is_ok());
        let expect = ref_ttm(&ref_ttm(&x.to_map(), &u2, 2), &u0, 0);
        assert_eq!(step2.to_map(), expect);
    }

    #[test]
    fn full_chain_produces_dense_core() {
        let x = sample();
        let us: Vec<DenseMatrix<f64>> = vec![
            DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0),
            DenseMatrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64 * 0.25),
            DenseMatrix::from_fn(5, 2, |i, j| (i + 3 * j) as f64 * 0.1),
        ];
        let mut ms = MultiSemiSparseTensor::from_coo(&x);
        let mut expect = x.to_map();
        for (m, u) in us.iter().enumerate() {
            ms = ms.ttm(u, m).unwrap();
            expect = ref_ttm(&expect, u, m);
        }
        assert_eq!(ms.dense_modes(), &[0, 1, 2]);
        assert_eq!(ms.num_fibers(), 1);
        assert_eq!(ms.stripe_len(), 8);
        for (k, v) in &expect {
            let got = ms.to_map()[k];
            assert!((got - v).abs() < 1e-9, "{k:?}: {got} vs {v}");
        }
    }

    /// Dense reference Ttv on a map representation.
    fn ref_ttv(
        m: &BTreeMap<Vec<u32>, f64>,
        v: &crate::dense::DenseVector<f64>,
        mode: usize,
    ) -> BTreeMap<Vec<u32>, f64> {
        let mut out = BTreeMap::new();
        for (c, val) in m {
            let mut k = c.clone();
            let idx = k.remove(mode) as usize;
            *out.entry(k).or_insert(0.0) += val * v[idx];
        }
        out.retain(|_, v| *v != 0.0);
        out
    }

    #[test]
    fn ttv_on_sparse_mode_matches_reference() {
        let x = sample();
        let v = crate::dense::DenseVector::from_fn(5, |i| (i + 1) as f64);
        let ms = MultiSemiSparseTensor::from_coo(&x).ttv(&v, 2).unwrap();
        assert!(ms.validate().is_ok());
        assert_eq!(ms.to_map(), ref_ttv(&x.to_map(), &v, 2));
        assert!(ms.dense_modes().is_empty());
    }

    #[test]
    fn ttv_on_dense_mode_reduces_the_stripe() {
        let x = sample();
        let u = DenseMatrix::from_fn(5, 3, |i, j| (i + j + 1) as f64);
        let semi = MultiSemiSparseTensor::from_coo(&x).ttm(&u, 2).unwrap();
        let v = crate::dense::DenseVector::from_fn(3, |i| (2 * i + 1) as f64);
        let out = semi.ttv(&v, 2).unwrap();
        assert!(out.validate().is_ok());
        assert!(out.dense_modes().is_empty());
        let expect = ref_ttv(&semi.to_map(), &v, 2);
        assert_eq!(out.to_map(), expect);
    }

    #[test]
    fn mixed_ttm_then_ttv_pipeline() {
        // Ttm mode 0 (densify), Ttv mode 1 (sparse contract), Ttv mode 0
        // (dense contract) -> order-1 result.
        let x = sample();
        let u0 = DenseMatrix::from_fn(3, 2, |i, j| (i + 2 * j) as f64 * 0.5);
        let v1 = crate::dense::DenseVector::from_fn(4, |i| (i as f64) - 1.5);
        let v0 = crate::dense::DenseVector::from_fn(2, |i| (i + 1) as f64);
        let step1 = MultiSemiSparseTensor::from_coo(&x).ttm(&u0, 0).unwrap();
        let step2 = step1.ttv(&v1, 1).unwrap();
        let step3 = step2.ttv(&v0, 0).unwrap();
        assert_eq!(step3.order(), 1);
        let expect = ref_ttv(&ref_ttv(&step1.to_map(), &v1, 1), &v0, 0);
        assert_eq!(step3.to_map(), expect);
    }

    #[test]
    fn ttv_rejects_bad_operands() {
        let x = sample();
        let ms = MultiSemiSparseTensor::from_coo(&x);
        let short = crate::dense::DenseVector::constant(3, 1.0f64);
        assert!(ms.ttv(&short, 2).is_err());
        assert!(ms
            .ttv(&crate::dense::DenseVector::constant(5, 1.0), 7)
            .is_err());
    }

    #[test]
    fn ttm_on_dense_mode_is_rejected() {
        let x = sample();
        let u = DenseMatrix::from_fn(5, 2, |_, _| 1.0);
        let ms = MultiSemiSparseTensor::from_coo(&x).ttm(&u, 2).unwrap();
        let u2 = DenseMatrix::from_fn(2, 2, |_, _| 1.0);
        assert!(ms.ttm(&u2, 2).is_err());
    }

    #[test]
    fn from_scoo_agrees_with_kernel_output() {
        let x32 = CooTensor::<f32>::from_entries(
            Shape::new(vec![3, 4, 5]),
            sample()
                .iter_entries()
                .map(|(c, v)| (c, v as f32))
                .collect(),
        )
        .unwrap();
        let u = DenseMatrix::from_fn(5, 2, |i, j| (i + j + 1) as f32);
        let scoo = crate::kernels::ttm::ttm(&x32, &u, 2).unwrap();
        let ms = MultiSemiSparseTensor::from_scoo(&scoo);
        assert!(ms.validate().is_ok());
        assert_eq!(ms.to_map(), scoo.to_map());
    }

    #[test]
    fn fiber_merging_reduces_fibers() {
        // Two nonzeros sharing (i, j) merge after contracting mode 2.
        let x = sample();
        let u = DenseMatrix::from_fn(5, 2, |_, _| 1.0);
        let ms = MultiSemiSparseTensor::from_coo(&x).ttm(&u, 2).unwrap();
        // (0,0,0) and (0,0,2) merge; (2,3,0) and (2,3,4) merge.
        assert_eq!(ms.num_fibers(), 3);
    }
}
