//! Mode-`n` fiber partitioning — the pre-processing step of Algorithm 1.
//!
//! A mode-`n` fiber is the set of nonzeros that agree on every index except
//! mode `n`. After a mode-last sort these are consecutive runs; `fptr`
//! records the start of each run, exactly as in the paper's COO-Ttv-OMP.

use rayon::prelude::*;

use crate::error::Result;
use crate::scalar::Scalar;

use super::CooTensor;

/// The fiber decomposition of a mode-last-sorted COO tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiberPartition {
    /// The product mode `n`.
    pub mode: usize,
    /// Start offset of each fiber, plus a final sentinel equal to `nnz`.
    /// Length is `num_fibers() + 1` (`M_F + 1` in the paper).
    pub fptr: Vec<usize>,
}

impl FiberPartition {
    /// Number of fibers (`M_F`).
    #[inline]
    pub fn num_fibers(&self) -> usize {
        self.fptr.len().saturating_sub(1)
    }

    /// Half-open nonzero range of fiber `f`.
    #[inline]
    pub fn fiber_range(&self, f: usize) -> std::ops::Range<usize> {
        self.fptr[f]..self.fptr[f + 1]
    }

    /// Length of the longest fiber — the load-imbalance indicator the paper
    /// discusses for COO-Ttv ("work imbalance may exist because of different
    /// fiber lengths").
    pub fn max_fiber_len(&self) -> usize {
        (0..self.num_fibers())
            .map(|f| self.fptr[f + 1] - self.fptr[f])
            .max()
            .unwrap_or(0)
    }

    /// Mean fiber length.
    pub fn mean_fiber_len(&self) -> f64 {
        if self.num_fibers() == 0 {
            0.0
        } else {
            (self.fptr[self.num_fibers()] - self.fptr[0]) as f64 / self.num_fibers() as f64
        }
    }
}

pub(super) fn fibers<S: Scalar>(t: &mut CooTensor<S>, mode: usize) -> Result<FiberPartition> {
    t.sort_mode_last(mode);
    fibers_from_sorted(t, mode)
}

pub(super) fn fibers_from_sorted<S: Scalar>(
    t: &CooTensor<S>,
    mode: usize,
) -> Result<FiberPartition> {
    let m = t.nnz();
    if m == 0 {
        return Ok(FiberPartition {
            mode,
            fptr: vec![0],
        });
    }
    let inds = t.inds();
    let order = t.order();
    // A new fiber starts wherever any non-product-mode index changes.
    let mut starts: Vec<usize> = (1..m)
        .into_par_iter()
        .filter(|&i| {
            (0..order)
                .filter(|&md| md != mode)
                .any(|md| inds[md][i] != inds[md][i - 1])
        })
        .collect();
    let mut fptr = Vec::with_capacity(starts.len() + 2);
    fptr.push(0);
    fptr.append(&mut starts);
    fptr.push(m);
    Ok(FiberPartition { mode, fptr })
}

#[cfg(test)]
mod tests {
    use crate::coo::CooTensor;
    use crate::shape::Shape;

    #[test]
    fn fibers_group_runs_in_mode_last_order() {
        // Mode-2 fibers of a 3x3x3 tensor: (0,0,*) has 2 nnz, (1,2,*) has 1,
        // (2,2,*) has 2.
        let mut t = CooTensor::from_entries(
            Shape::new(vec![3, 3, 3]),
            vec![
                (vec![0, 0, 0], 1.0f32),
                (vec![0, 0, 2], 2.0),
                (vec![1, 2, 1], 3.0),
                (vec![2, 2, 0], 4.0),
                (vec![2, 2, 2], 5.0),
            ],
        )
        .unwrap();
        let fp = t.fibers(2).unwrap();
        assert_eq!(fp.num_fibers(), 3);
        assert_eq!(fp.fptr, vec![0, 2, 3, 5]);
        assert_eq!(fp.fiber_range(0), 0..2);
        assert_eq!(fp.max_fiber_len(), 2);
        assert!((fp.mean_fiber_len() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fibers_of_mode_zero_resort_the_tensor() {
        let mut t = CooTensor::from_entries(
            Shape::new(vec![3, 3]),
            vec![(vec![0, 1], 1.0f32), (vec![1, 1], 2.0), (vec![2, 0], 3.0)],
        )
        .unwrap();
        // Mode-0 fibers group by column j: j=0 has 1 nnz, j=1 has 2.
        let fp = t.fibers(0).unwrap();
        assert_eq!(fp.num_fibers(), 2);
        assert_eq!(fp.fptr, vec![0, 1, 3]);
        assert!(t.sort_state().is_mode_last(2, 0));
    }

    #[test]
    fn empty_tensor_has_no_fibers() {
        let mut t = CooTensor::<f32>::empty(Shape::new(vec![2, 2]));
        let fp = t.fibers(1).unwrap();
        assert_eq!(fp.num_fibers(), 0);
        assert_eq!(fp.max_fiber_len(), 0);
        assert_eq!(fp.mean_fiber_len(), 0.0);
    }

    #[test]
    fn single_fiber_when_all_share_other_indices() {
        let mut t = CooTensor::from_entries(
            Shape::new(vec![2, 4]),
            vec![(vec![1, 0], 1.0f32), (vec![1, 2], 2.0), (vec![1, 3], 3.0)],
        )
        .unwrap();
        let fp = t.fibers(1).unwrap();
        assert_eq!(fp.num_fibers(), 1);
        assert_eq!(fp.fiber_range(0), 0..3);
    }
}
