//! Semi-sparse COO (sCOO) — COO with one dense mode (paper §3.1, Fig. 1(b)).
//!
//! A dense mode means every fiber along it is dense. sCOO stores the dense
//! mode as a dense stripe per fiber and keeps the remaining modes as COO
//! index arrays. It is the natural output format of Ttm: by the sparse-dense
//! property (§3.2.1), multiplying a sparse mode by a dense matrix makes that
//! mode dense while the other modes keep the input's sparsity.

use std::collections::BTreeMap;

use crate::error::{Result, TensorError};
use crate::scalar::Scalar;
use crate::shape::Shape;

use super::{CooTensor, SortState};

/// A semi-sparse tensor: sparse in all modes except `dense_mode`.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiSparseTensor<S: Scalar> {
    shape: Shape,
    dense_mode: usize,
    /// One index array per mode; the entry at `dense_mode` is empty. Sparse
    /// arrays all have length `num_fibers()`.
    inds: Vec<Vec<u32>>,
    /// `num_fibers() * dense_size()` values, fiber-major.
    vals: Vec<S>,
}

impl<S: Scalar> SemiSparseTensor<S> {
    /// Build from parts. `inds[dense_mode]` must be empty; every other index
    /// array must have the same length `MF`, and `vals` must hold
    /// `MF * shape.dim(dense_mode)` values.
    pub fn from_parts(
        shape: Shape,
        dense_mode: usize,
        inds: Vec<Vec<u32>>,
        vals: Vec<S>,
    ) -> Result<Self> {
        shape.check_mode(dense_mode)?;
        if inds.len() != shape.order() {
            return Err(TensorError::OrderMismatch {
                left: shape.order(),
                right: inds.len(),
            });
        }
        let t = SemiSparseTensor {
            shape,
            dense_mode,
            inds,
            vals,
        };
        t.validate()?;
        Ok(t)
    }

    pub(crate) fn from_parts_unchecked(
        shape: Shape,
        dense_mode: usize,
        inds: Vec<Vec<u32>>,
        vals: Vec<S>,
    ) -> Self {
        let t = SemiSparseTensor {
            shape,
            dense_mode,
            inds,
            vals,
        };
        debug_assert!(t.validate().is_ok());
        t
    }

    /// The tensor shape (the dense mode's size is the stripe length).
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Which mode is dense.
    #[inline]
    pub fn dense_mode(&self) -> usize {
        self.dense_mode
    }

    /// Length of each dense stripe (`R` for Ttm outputs).
    #[inline]
    pub fn dense_size(&self) -> usize {
        self.shape.dim(self.dense_mode) as usize
    }

    /// Number of sparse fibers (`M_F`).
    #[inline]
    pub fn num_fibers(&self) -> usize {
        self.inds
            .iter()
            .enumerate()
            .find(|&(m, _)| m != self.dense_mode)
            .map_or(0, |(_, a)| a.len())
    }

    /// Total stored values (`M_F * R`).
    #[inline]
    pub fn num_values(&self) -> usize {
        self.vals.len()
    }

    /// Sparse index of fiber `f` in `mode` (must not be the dense mode).
    #[inline]
    pub fn fiber_index(&self, f: usize, mode: usize) -> u32 {
        debug_assert_ne!(mode, self.dense_mode);
        self.inds[mode][f]
    }

    /// The index arrays (empty at the dense mode).
    #[inline]
    pub fn inds(&self) -> &[Vec<u32>] {
        &self.inds
    }

    /// The dense stripe of fiber `f`.
    #[inline]
    pub fn fiber_vals(&self, f: usize) -> &[S] {
        let r = self.dense_size();
        &self.vals[f * r..(f + 1) * r]
    }

    /// All values, fiber-major.
    #[inline]
    pub fn vals(&self) -> &[S] {
        &self.vals
    }

    /// Expand to plain COO (keeps every stored value, including numerical
    /// zeros inside dense stripes, because semi-sparse storage is positional).
    pub fn to_coo(&self) -> CooTensor<S> {
        let r = self.dense_size();
        let mf = self.num_fibers();
        let order = self.order();
        let mut inds: Vec<Vec<u32>> = vec![Vec::with_capacity(mf * r); order];
        let mut vals = Vec::with_capacity(mf * r);
        for f in 0..mf {
            for c in 0..r {
                for m in 0..order {
                    if m == self.dense_mode {
                        inds[m].push(c as u32);
                    } else {
                        inds[m].push(self.inds[m][f]);
                    }
                }
            }
            vals.extend_from_slice(self.fiber_vals(f));
        }
        CooTensor::from_parts_unchecked(self.shape.clone(), inds, vals, SortState::Unsorted)
    }

    /// Coordinate → value map of the *numerically nonzero* values; test
    /// helper for comparing against reference computations.
    pub fn to_map(&self) -> BTreeMap<Vec<u32>, f64> {
        let mut map = BTreeMap::new();
        for f in 0..self.num_fibers() {
            for (c, &v) in self.fiber_vals(f).iter().enumerate() {
                if v != S::ZERO {
                    let mut coord = vec![0u32; self.order()];
                    for m in 0..self.order() {
                        coord[m] = if m == self.dense_mode {
                            c as u32
                        } else {
                            self.inds[m][f]
                        };
                    }
                    *map.entry(coord).or_insert(0.0) += v.to_f64();
                }
            }
        }
        map
    }

    /// Storage bytes: `(N-1)` sparse index arrays of `M_F` `u32`s plus the
    /// dense values — `4(N-1)M_F + M_F * R * sizeof(S)`.
    pub fn storage_bytes(&self) -> u64 {
        let mf = self.num_fibers() as u64;
        4 * (self.order() as u64 - 1) * mf + self.vals.len() as u64 * S::BYTES
    }

    /// Check structural invariants.
    pub fn validate(&self) -> Result<()> {
        let mf = self.num_fibers();
        if !self.inds[self.dense_mode].is_empty() {
            return Err(TensorError::InvalidStructure(
                "dense mode must have no index array".into(),
            ));
        }
        for (m, arr) in self.inds.iter().enumerate() {
            if m == self.dense_mode {
                continue;
            }
            if arr.len() != mf {
                return Err(TensorError::InvalidStructure(format!(
                    "mode-{m} index array length {} != fiber count {mf}",
                    arr.len()
                )));
            }
            let dim = self.shape.dim(m);
            if let Some(&bad) = arr.iter().find(|&&i| i >= dim) {
                return Err(TensorError::IndexOutOfBounds {
                    mode: m,
                    index: bad,
                    dim,
                });
            }
        }
        if self.vals.len() != mf * self.dense_size() {
            return Err(TensorError::InvalidStructure(format!(
                "value count {} != fibers {mf} * dense size {}",
                self.vals.len(),
                self.dense_size()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SemiSparseTensor<f32> {
        // 3x2x3 tensor, dense in mode 2 (size 3), two fibers: (0,1,:) and (2,0,:).
        SemiSparseTensor::from_parts(
            Shape::new(vec![3, 2, 3]),
            2,
            vec![vec![0, 2], vec![1, 0], vec![]],
            vec![1.0, 2.0, 3.0, 4.0, 0.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.num_fibers(), 2);
        assert_eq!(t.dense_size(), 3);
        assert_eq!(t.fiber_vals(1), &[4.0, 0.0, 6.0]);
        assert_eq!(t.fiber_index(1, 0), 2);
    }

    #[test]
    fn to_coo_expands_all_positions() {
        let t = sample();
        let c = t.to_coo();
        assert_eq!(c.nnz(), 6);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn to_map_skips_numerical_zeros() {
        let t = sample();
        let m = t.to_map();
        assert_eq!(m.len(), 5);
        assert_eq!(m[&vec![2, 0, 2]], 6.0);
        assert!(!m.contains_key(&vec![2, 0, 1]));
    }

    #[test]
    fn storage_matches_formula() {
        let t = sample();
        // 4 * (3-1) * 2 + 6 * 4 = 16 + 24 = 40
        assert_eq!(t.storage_bytes(), 40);
    }

    #[test]
    fn from_parts_rejects_bad_value_count() {
        let r = SemiSparseTensor::from_parts(
            Shape::new(vec![3, 2, 3]),
            2,
            vec![vec![0], vec![1], vec![]],
            vec![1.0f32, 2.0],
        );
        assert!(r.is_err());
    }

    #[test]
    fn from_parts_rejects_index_array_on_dense_mode() {
        let r = SemiSparseTensor::from_parts(
            Shape::new(vec![3, 2]),
            1,
            vec![vec![0], vec![0]],
            vec![1.0f32, 2.0],
        );
        assert!(r.is_err());
    }
}
