//! Coordinate (COO) format for general sparse tensors, and its semi-sparse
//! variant sCOO (paper §3.1, Figure 1).
//!
//! COO stores one `u32` index array per mode plus one value array
//! (struct-of-arrays). It does not require any particular ordering, but the
//! fiber-based kernels (Ttv, Ttm) and the general element-wise merge sort the
//! tensor lexicographically first; [`CooTensor::sort_state`] tracks this so
//! repeated kernel calls skip the re-sort, mirroring the paper's
//! pre-processing stage.

mod build;
mod fiber;
mod matricize;
mod mscoo;
mod scoo;
mod sort;

pub use fiber::FiberPartition;
pub use matricize::matricize;
pub use mscoo::MultiSemiSparseTensor;
pub use scoo::SemiSparseTensor;
pub use sort::{SortAlgo, SortState};

use std::collections::BTreeMap;

use crate::error::{Result, TensorError};
use crate::scalar::Scalar;
use crate::shape::Shape;

/// A general sparse tensor of arbitrary order in coordinate format.
///
/// Storage is `4(N+1)M` bytes for an order-`N` tensor with `M` nonzeros and
/// `f32` values, matching the paper's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor<S: Scalar> {
    shape: Shape,
    /// One index array per mode; all have length `nnz()`.
    inds: Vec<Vec<u32>>,
    vals: Vec<S>,
    sort: SortState,
}

impl<S: Scalar> CooTensor<S> {
    /// An empty tensor of the given shape.
    pub fn empty(shape: Shape) -> Self {
        let order = shape.order();
        CooTensor {
            shape,
            inds: vec![Vec::new(); order],
            vals: Vec::new(),
            sort: SortState::Unsorted,
        }
    }

    /// Build from `(coordinate, value)` entries.
    ///
    /// Entries are validated against the shape, sorted lexicographically, and
    /// duplicates are combined by summation (the usual COO assembly rule).
    /// Entries whose combined value is exactly zero are kept — COO stores
    /// whatever it was given, and several kernels (e.g. Tew on two patterns)
    /// rely on structural rather than numerical nonzeros.
    pub fn from_entries(shape: Shape, entries: Vec<(Vec<u32>, S)>) -> Result<Self> {
        build::from_entries(shape, entries)
    }

    /// Build directly from struct-of-arrays parts.
    ///
    /// Validates array lengths and index bounds; does *not* sort or dedup.
    pub fn from_parts(shape: Shape, inds: Vec<Vec<u32>>, vals: Vec<S>) -> Result<Self> {
        build::from_parts(shape, inds, vals)
    }

    /// Internal constructor for outputs whose structure is correct by
    /// construction (kernel outputs); skips validation.
    pub(crate) fn from_parts_unchecked(
        shape: Shape,
        inds: Vec<Vec<u32>>,
        vals: Vec<S>,
        sort: SortState,
    ) -> Self {
        debug_assert_eq!(inds.len(), shape.order());
        debug_assert!(inds.iter().all(|a| a.len() == vals.len()));
        CooTensor {
            shape,
            inds,
            vals,
            sort,
        }
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of stored nonzeros (`M` in the paper).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Density: `nnz / prod(dims)`.
    pub fn density(&self) -> f64 {
        self.shape.density(self.nnz())
    }

    /// The index array of one mode.
    #[inline]
    pub fn mode_inds(&self, mode: usize) -> &[u32] {
        &self.inds[mode]
    }

    /// All index arrays.
    #[inline]
    pub fn inds(&self) -> &[Vec<u32>] {
        &self.inds
    }

    /// The value array.
    #[inline]
    pub fn vals(&self) -> &[S] {
        &self.vals
    }

    /// The value array, mutably (indices are immutable through this — value
    /// editing never invalidates the sort state).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [S] {
        &mut self.vals
    }

    /// Current sort state.
    #[inline]
    pub fn sort_state(&self) -> &SortState {
        &self.sort
    }

    /// Write the coordinate of nonzero `at` into `buf` (length = order).
    #[inline]
    pub fn coord_into(&self, at: usize, buf: &mut [u32]) {
        for (m, arr) in self.inds.iter().enumerate() {
            buf[m] = arr[at];
        }
    }

    /// The coordinate of nonzero `at` as a fresh `Vec`.
    pub fn coord(&self, at: usize) -> Vec<u32> {
        let mut buf = vec![0u32; self.order()];
        self.coord_into(at, &mut buf);
        buf
    }

    /// Iterate `(coordinate, value)` pairs (allocates one `Vec` per entry —
    /// convenience for tests and small tensors; kernels use the SoA arrays
    /// directly).
    pub fn iter_entries(&self) -> impl Iterator<Item = (Vec<u32>, S)> + '_ {
        (0..self.nnz()).map(move |i| (self.coord(i), self.vals[i]))
    }

    /// Sort nonzeros lexicographically in the given mode precedence order
    /// (`mode_order[0]` is the slowest-varying mode). No-op if the tensor is
    /// already in that order.
    pub fn sort_lexicographic(&mut self, mode_order: &[usize]) {
        sort::sort_lexicographic(self, mode_order, SortAlgo::Auto);
    }

    /// [`CooTensor::sort_lexicographic`] with an explicit sort backend —
    /// used by `tenbench verify` to cross-check the radix pipeline against
    /// the comparator reference.
    pub fn sort_lexicographic_with(&mut self, mode_order: &[usize], algo: SortAlgo) {
        sort::sort_lexicographic(self, mode_order, algo);
    }

    /// Sort so that `mode` is innermost with the remaining modes ascending —
    /// the order required by the mode-`n` fiber kernels (Ttv/Ttm).
    pub fn sort_mode_last(&mut self, mode: usize) {
        let order = crate::shape::mode_last_order(self.order(), mode);
        self.sort_lexicographic(&order);
    }

    /// Sort nonzeros by the Morton order of their block coordinates, the
    /// pre-processing step of HiCOO construction (paper §3.3).
    pub fn sort_morton(&mut self, block_bits: u8) {
        sort::sort_morton(self, block_bits, SortAlgo::Auto);
    }

    /// [`CooTensor::sort_morton`] with an explicit sort backend.
    pub fn sort_morton_with(&mut self, block_bits: u8, algo: SortAlgo) {
        sort::sort_morton(self, block_bits, algo);
    }

    /// Compute the mode-`n` fiber partition (requires, and if necessary
    /// performs, a mode-last sort). Returns the `fptr` array of Algorithm 1.
    pub fn fibers(&mut self, mode: usize) -> Result<FiberPartition> {
        self.shape.check_mode(mode)?;
        fiber::fibers(self, mode)
    }

    /// Compute the mode-`n` fiber partition assuming the tensor is already
    /// mode-last sorted; errors if it is not.
    pub fn fibers_sorted(&self, mode: usize) -> Result<FiberPartition> {
        self.shape.check_mode(mode)?;
        if !self.sort.is_mode_last(self.order(), mode) {
            return Err(TensorError::InvalidStructure(format!(
                "tensor is not sorted with mode {mode} innermost"
            )));
        }
        fiber::fibers_from_sorted(self, mode)
    }

    /// Relabel one mode's indices through a permutation (validated by the
    /// caller, `crate::reorder`); invalidates the sort state.
    pub(crate) fn relabel_mode(&mut self, mode: usize, perm: &[u32]) {
        for i in self.inds[mode].iter_mut() {
            *i = perm[*i as usize];
        }
        self.sort = SortState::Unsorted;
    }

    /// Storage footprint in bytes: `order` index arrays of `u32` plus values.
    pub fn storage_bytes(&self) -> u64 {
        let m = self.nnz() as u64;
        m * (4 * self.order() as u64 + S::BYTES)
    }

    /// A cheap structural fingerprint for cache keying: FNV-1a over the
    /// shape, nnz, and a strided sample of up to 1024 coordinates and
    /// value bit patterns.
    ///
    /// Two tensors with the same fingerprint are treated as
    /// interchangeable by the serving layer's format/schedule cache, so
    /// the hash mixes values (not just the pattern); sampling keeps it
    /// O(1) regardless of nnz. This is content-addressed, unlike the
    /// schedule cache in [`crate::sched`], which keys on buffer identity —
    /// holding cached tensors behind stable `Arc`s makes the two compose.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET;
        let mut mix = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for &d in self.shape.dims() {
            mix(d as u64);
        }
        let m = self.nnz();
        mix(m as u64);
        let stride = (m / 1024).max(1);
        let mut at = 0;
        while at < m {
            for inds in &self.inds {
                mix(inds[at] as u64);
            }
            mix(self.vals[at].to_f64().to_bits());
            at += stride;
        }
        h
    }

    /// Frobenius norm (`sqrt` of the sum of squared values) — zeros outside
    /// the pattern contribute nothing, so this is exact for sparse tensors.
    pub fn frobenius_norm(&self) -> S {
        self.vals.iter().map(|&v| v * v).sum::<S>().sqrt()
    }

    /// Inner product with a same-pattern tensor (`<X, Y> = Σ x_i y_i`),
    /// the quantity tensor-method fit computations need.
    pub fn inner_same_pattern(&self, other: &CooTensor<S>) -> Result<S> {
        if !self.same_pattern(other) {
            return Err(TensorError::PatternMismatch);
        }
        Ok(self
            .vals
            .iter()
            .zip(other.vals())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Collect into a coordinate → value map (sums duplicates). Primarily a
    /// test helper for comparing tensors across formats and kernels.
    pub fn to_map(&self) -> BTreeMap<Vec<u32>, f64> {
        let mut map = BTreeMap::new();
        for (c, v) in self.iter_entries() {
            *map.entry(c).or_insert(0.0) += v.to_f64();
        }
        map
    }

    /// `true` if the two tensors have identical shapes, coordinates (in
    /// storage order), and sort state — i.e. they share a nonzero pattern in
    /// the strict sense required by the same-pattern Tew fast path.
    pub fn same_pattern(&self, other: &CooTensor<S>) -> bool {
        self.shape == other.shape && self.inds == other.inds
    }

    /// Validate internal structure: array lengths, index bounds, and — when
    /// the sort state claims an ordering — that the nonzeros actually follow
    /// it. Cheap enough to run after any conversion or untrusted load;
    /// kernels assume validity.
    pub fn validate(&self) -> Result<()> {
        if self.inds.len() != self.order() {
            return Err(TensorError::InvalidStructure(format!(
                "{} index arrays for order-{} tensor",
                self.inds.len(),
                self.order()
            )));
        }
        for (m, arr) in self.inds.iter().enumerate() {
            if arr.len() != self.vals.len() {
                return Err(TensorError::InvalidStructure(format!(
                    "mode-{m} index array length {} != nnz {}",
                    arr.len(),
                    self.vals.len()
                )));
            }
            let dim = self.shape.dim(m);
            if let Some(&bad) = arr.iter().find(|&&i| i >= dim) {
                return Err(TensorError::IndexOutOfBounds {
                    mode: m,
                    index: bad,
                    dim,
                });
            }
        }
        match &self.sort {
            SortState::Unsorted => {}
            SortState::Lexicographic(mode_order) => {
                if mode_order.len() != self.order() {
                    return Err(TensorError::InvalidStructure(format!(
                        "sort state names {} modes for an order-{} tensor",
                        mode_order.len(),
                        self.order()
                    )));
                }
                for i in 1..self.nnz() {
                    let mut cmp = std::cmp::Ordering::Equal;
                    for &m in mode_order {
                        cmp = self.inds[m][i - 1].cmp(&self.inds[m][i]);
                        if cmp != std::cmp::Ordering::Equal {
                            break;
                        }
                    }
                    if cmp == std::cmp::Ordering::Greater {
                        return Err(TensorError::InvalidStructure(format!(
                            "nonzeros {} and {} violate the claimed lexicographic order",
                            i - 1,
                            i
                        )));
                    }
                }
            }
            SortState::Morton { block_bits } => {
                let bits = *block_bits;
                let mut prev = vec![0u32; self.order()];
                let mut curr = vec![0u32; self.order()];
                for i in 1..self.nnz() {
                    for (m, arr) in self.inds.iter().enumerate() {
                        prev[m] = arr[i - 1] >> bits;
                        curr[m] = arr[i] >> bits;
                    }
                    if crate::hicoo::morton::morton_cmp(&prev, &curr) == std::cmp::Ordering::Greater
                    {
                        return Err(TensorError::InvalidStructure(format!(
                            "nonzeros {} and {} violate the claimed Morton block order",
                            i - 1,
                            i
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Count NaN/Inf values — untrusted inputs and misbehaving kernels both
    /// surface here; a trustworthy benchmark cell must report zero.
    pub fn nonfinite_count(&self) -> usize {
        self.vals.iter().filter(|v| !v.is_finite()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4, 4]),
            vec![
                (vec![3, 1, 0], 4.0),
                (vec![0, 0, 0], 1.0),
                (vec![1, 2, 3], 2.0),
                (vec![0, 0, 0], 0.5), // duplicate, combined by summation
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_entries_sorts_and_combines_duplicates() {
        let t = small();
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.coord(0), vec![0, 0, 0]);
        assert_eq!(t.vals()[0], 1.5);
        assert!(t.sort_state().is_lexicographic(&[0, 1, 2]));
    }

    #[test]
    fn from_entries_rejects_out_of_bounds() {
        let r = CooTensor::from_entries(Shape::new(vec![2, 2]), vec![(vec![0, 2], 1.0f32)]);
        assert!(matches!(r, Err(TensorError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn from_entries_rejects_wrong_order_coord() {
        let r = CooTensor::from_entries(Shape::new(vec![2, 2]), vec![(vec![0], 1.0f32)]);
        assert!(matches!(r, Err(TensorError::OrderMismatch { .. })));
    }

    #[test]
    fn storage_matches_paper_formula() {
        // 4(N+1)M bytes for f32: N=3, M=3 -> 48.
        let t = small();
        assert_eq!(t.storage_bytes(), 48);
    }

    #[test]
    fn to_map_round_trips_entries() {
        let t = small();
        let m = t.to_map();
        assert_eq!(m.len(), 3);
        assert_eq!(m[&vec![1, 2, 3]], 2.0);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(small().validate().is_ok());
    }

    #[test]
    fn validate_detects_false_sort_claims() {
        // Claims lexicographic order but the nonzeros are shuffled.
        let mut t = small();
        for arr in &mut t.inds {
            arr.swap(0, 2);
        }
        assert!(matches!(
            t.validate(),
            Err(TensorError::InvalidStructure(_))
        ));

        // Claims Morton block order but blocks run backwards.
        let mut t = small();
        t.sort_morton(1);
        for arr in &mut t.inds {
            arr.reverse();
        }
        t.vals.reverse();
        assert!(matches!(
            t.validate(),
            Err(TensorError::InvalidStructure(_))
        ));
    }

    #[test]
    fn nonfinite_count_flags_poisoned_values() {
        let mut t = small();
        assert_eq!(t.nonfinite_count(), 0);
        t.vals_mut()[1] = f32::NAN;
        assert_eq!(t.nonfinite_count(), 1);
    }

    #[test]
    fn from_parts_validates_lengths() {
        let r = CooTensor::from_parts(
            Shape::new(vec![2, 2]),
            vec![vec![0, 1], vec![0]],
            vec![1.0f32, 2.0],
        );
        assert!(r.is_err());
    }

    #[test]
    fn same_pattern_detects_match_and_mismatch() {
        let a = small();
        let mut b = small();
        assert!(a.same_pattern(&b));
        b.vals_mut()[0] = 9.0; // values may differ
        assert!(a.same_pattern(&b));
        let c = CooTensor::from_entries(Shape::new(vec![4, 4, 4]), vec![(vec![0, 0, 1], 1.0f32)])
            .unwrap();
        assert!(!a.same_pattern(&c));
    }

    #[test]
    fn norm_and_inner_product() {
        let t =
            CooTensor::from_entries(Shape::new(vec![4]), vec![(vec![0], 3.0f64), (vec![2], 4.0)])
                .unwrap();
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
        // <X, X> = ||X||^2; mismatched pattern errors.
        assert_eq!(t.inner_same_pattern(&t).unwrap(), 25.0);
        let other = CooTensor::from_entries(Shape::new(vec![4]), vec![(vec![1], 1.0f64)]).unwrap();
        assert!(matches!(
            t.inner_same_pattern(&other),
            Err(TensorError::PatternMismatch)
        ));
    }

    #[test]
    fn empty_tensor_is_consistent() {
        let t = CooTensor::<f32>::empty(Shape::new(vec![5, 5]));
        assert_eq!(t.nnz(), 0);
        assert!(t.validate().is_ok());
        assert_eq!(t.storage_bytes(), 0);
    }
}
