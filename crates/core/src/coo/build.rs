//! COO assembly: entry validation, lexicographic ordering, duplicate
//! combination.

use crate::error::{Result, TensorError};
use crate::scalar::Scalar;
use crate::shape::Shape;

use super::{CooTensor, SortState};

pub(super) fn from_entries<S: Scalar>(
    shape: Shape,
    mut entries: Vec<(Vec<u32>, S)>,
) -> Result<CooTensor<S>> {
    for (coord, _) in &entries {
        shape.check_coord(coord)?;
    }
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));

    let order = shape.order();
    let mut inds: Vec<Vec<u32>> = vec![Vec::with_capacity(entries.len()); order];
    let mut vals: Vec<S> = Vec::with_capacity(entries.len());

    for (coord, v) in entries {
        let dup = vals
            .last()
            .is_some_and(|_| (0..order).all(|m| *inds[m].last().unwrap() == coord[m]));
        if dup {
            *vals.last_mut().unwrap() += v;
        } else {
            for (m, &c) in coord.iter().enumerate() {
                inds[m].push(c);
            }
            vals.push(v);
        }
    }

    Ok(CooTensor {
        shape,
        inds,
        vals,
        sort: SortState::Lexicographic((0..order).collect()),
    })
}

pub(super) fn from_parts<S: Scalar>(
    shape: Shape,
    inds: Vec<Vec<u32>>,
    vals: Vec<S>,
) -> Result<CooTensor<S>> {
    if inds.len() != shape.order() {
        return Err(TensorError::OrderMismatch {
            left: shape.order(),
            right: inds.len(),
        });
    }
    for (m, arr) in inds.iter().enumerate() {
        if arr.len() != vals.len() {
            return Err(TensorError::InvalidStructure(format!(
                "mode-{m} index array length {} != value count {}",
                arr.len(),
                vals.len()
            )));
        }
        let dim = shape.dim(m);
        if let Some(&bad) = arr.iter().find(|&&i| i >= dim) {
            return Err(TensorError::IndexOutOfBounds {
                mode: m,
                index: bad,
                dim,
            });
        }
    }
    Ok(CooTensor {
        shape,
        inds,
        vals,
        sort: SortState::Unsorted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_collapse_in_order() {
        let t = CooTensor::from_entries(
            Shape::new(vec![3]),
            vec![(vec![2], 1.0f32), (vec![2], 2.0), (vec![0], 3.0)],
        )
        .unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.mode_inds(0), &[0, 2]);
        assert_eq!(t.vals(), &[3.0, 3.0]);
    }

    #[test]
    fn from_parts_keeps_given_order_and_marks_unsorted() {
        let t = CooTensor::from_parts(
            Shape::new(vec![4]),
            vec![vec![3, 0, 2]],
            vec![1.0f32, 2.0, 3.0],
        )
        .unwrap();
        assert_eq!(t.mode_inds(0), &[3, 0, 2]);
        assert_eq!(*t.sort_state(), SortState::Unsorted);
    }
}
