//! 64-byte-aligned heap buffers for vector-friendly value storage.
//!
//! `Vec<f32>` only guarantees the allocator's natural alignment (16 bytes
//! on most 64-bit targets), so a buffer handed to a 256-bit kernel may
//! straddle cache lines on every load. [`AlignedVec`] allocates at
//! [`SIMD_ALIGN`] (one cache line, and ≥ any vector width up to AVX-512)
//! so the SIMD backend and the value-blocked HiCOO layout can assume
//! aligned, non-line-splitting starts. The element type is restricted to
//! `Copy` — the suite only stores plain scalars and indices here — which
//! keeps growth, clone, and drop trivially correct (no element drops).

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::fmt;
use std::ops::{Deref, DerefMut};

use rayon::prelude::*;

/// Alignment (bytes) guaranteed by [`AlignedVec`]: one cache line, which
/// also covers every vector width this suite targets (AVX2 needs 32).
pub const SIMD_ALIGN: usize = 64;

/// A fixed-length heap buffer whose first element is 64-byte aligned.
///
/// Unlike `Vec`, an `AlignedVec` does not grow: it is built at its final
/// length (`filled` / `from_slice` / `first_touch_filled`) and then only
/// read or written in place, which is exactly the lifecycle of kernel
/// scratch, factor-matrix storage, and value-blocked HiCOO runs.
pub struct AlignedVec<T: Copy> {
    ptr: *mut T,
    len: usize,
}

// Safety: the buffer is uniquely owned and `T: Copy` values carry no
// thread affinity; access rules are those of `&[T]` / `&mut [T]`.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    fn layout(len: usize) -> Layout {
        let size = std::mem::size_of::<T>() * len;
        let align = SIMD_ALIGN.max(std::mem::align_of::<T>());
        Layout::from_size_align(size, align).expect("aligned layout overflow")
    }

    /// Allocate an uninitialized buffer of `len` elements. Private: every
    /// public constructor fully initializes before handing the value out.
    fn alloc_uninit(len: usize) -> Self {
        if len == 0 {
            // Dangling-but-aligned pointer, matching Vec's ZST/empty idiom.
            return AlignedVec {
                ptr: SIMD_ALIGN as *mut T,
                len: 0,
            };
        }
        let layout = Self::layout(len);
        let ptr = unsafe { alloc(layout) } as *mut T;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        AlignedVec { ptr, len }
    }

    /// Buffer of `len` copies of `value`.
    pub fn filled(len: usize, value: T) -> Self {
        let v = Self::alloc_uninit(len);
        for i in 0..len {
            unsafe { v.ptr.add(i).write(value) };
        }
        v
    }

    /// Copy of an existing slice, re-homed to aligned storage.
    pub fn from_slice(src: &[T]) -> Self {
        let v = Self::alloc_uninit(src.len());
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), v.ptr, src.len()) };
        v
    }

    /// Like [`filled`](Self::filled), but the backing pages are written
    /// (first-touched) by the current pool's workers, mirroring
    /// `par::first_touch_filled` for plain `Vec`s: large outputs get their
    /// fault cost distributed and their pages placed near the workers that
    /// will write them.
    pub fn first_touch_filled(len: usize, value: T) -> Self
    where
        T: Send + Sync,
    {
        let v = Self::alloc_uninit(len);
        if len > 0 {
            // Safety: the buffer is uniquely owned and chunks are disjoint;
            // every element is written exactly once before `v` is returned.
            let slice = unsafe { std::slice::from_raw_parts_mut(v.ptr, len) };
            slice
                .par_chunks_mut(1 << 15)
                .with_min_len(1)
                .for_each(|chunk| chunk.fill(value));
        }
        v
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole buffer as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The whole buffer as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }
}

impl<T: Copy + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Copy> From<Vec<T>> for AlignedVec<T> {
    fn from(v: Vec<T>) -> Self {
        Self::from_slice(&v)
    }
}

impl<T: Copy> From<&[T]> for AlignedVec<T> {
    fn from(s: &[T]) -> Self {
        Self::from_slice(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_aligned<T: Copy>(v: &AlignedVec<T>) {
        assert_eq!(
            v.as_slice().as_ptr() as usize % SIMD_ALIGN,
            0,
            "AlignedVec start must be {SIMD_ALIGN}-byte aligned"
        );
    }

    #[test]
    fn filled_is_aligned_and_initialized() {
        for len in [1usize, 7, 64, 1000] {
            let v = AlignedVec::filled(len, 2.5f32);
            assert_aligned(&v);
            assert_eq!(v.len(), len);
            assert!(v.iter().all(|&x| x == 2.5));
        }
    }

    #[test]
    fn empty_buffer_is_safe() {
        let v: AlignedVec<f64> = AlignedVec::filled(0, 0.0);
        assert_aligned(&v);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f64]);
        let c = v.clone();
        assert_eq!(v, c);
    }

    #[test]
    fn from_slice_round_trips() {
        let src = vec![1u32, 2, 3, 4, 5];
        let v = AlignedVec::from_slice(&src);
        assert_aligned(&v);
        assert_eq!(v.as_slice(), src.as_slice());
        let back: AlignedVec<u32> = src.clone().into();
        assert_eq!(back.as_slice(), src.as_slice());
    }

    #[test]
    fn clone_and_eq_follow_contents() {
        let mut a = AlignedVec::filled(16, 1.0f64);
        let b = a.clone();
        assert_aligned(&b);
        assert_eq!(a, b);
        a[3] = 2.0;
        assert_ne!(a, b);
    }

    #[test]
    fn mutation_through_deref_sticks() {
        let mut v = AlignedVec::filled(8, 0.0f32);
        v.fill(3.0);
        v[0] = 1.0;
        assert_eq!(v[0], 1.0);
        assert_eq!(v[7], 3.0);
        assert_eq!(v.iter().sum::<f32>(), 1.0 + 7.0 * 3.0);
    }

    #[test]
    fn first_touch_filled_matches_plain_fill() {
        let v = AlignedVec::first_touch_filled(100_001, 7u32);
        assert_aligned(&v);
        assert_eq!(v.len(), 100_001);
        assert!(v.iter().all(|&x| x == 7));
        let w = crate::par::with_threads(4, || AlignedVec::first_touch_filled(70_003, 1.5f64));
        assert_aligned(&w);
        assert!(w.iter().all(|&x| x == 1.5));
    }

    #[test]
    fn many_sizes_stay_aligned() {
        // Alignment must hold regardless of allocation size class.
        for len in 1..128usize {
            let v = AlignedVec::filled(len, 0u8);
            assert_aligned(&v);
        }
    }
}
