//! Dense operands: the rank-`R` factor matrices and vectors that the sparse
//! kernels multiply against.

mod matrix;
mod vector;

pub use matrix::DenseMatrix;
pub use vector::DenseVector;
