//! Row-major dense matrix.
//!
//! The paper stores factor matrices as `I_n x R` with row-major layout
//! ("we transpose the matrix modes U, which leads to a more efficient Ttm
//! under the row-major storage convention of the C language"), with `R`
//! typically 16 to reflect low-rank tensor methods.

use std::ops::{Index, IndexMut};

use crate::align::AlignedVec;
use crate::scalar::Scalar;

/// A dense `rows x cols` matrix in row-major order.
///
/// Values live in an [`AlignedVec`], so `data()` (and row 0) always starts
/// on a 64-byte boundary — the SIMD backend's vector loads never straddle
/// a cache line at the buffer head, and the value-blocked HiCOO layout can
/// assume factor storage alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<S: Scalar> {
    rows: usize,
    cols: usize,
    data: AlignedVec<S>,
}

impl<S: Scalar> DenseMatrix<S> {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: AlignedVec::filled(rows * cols, S::ZERO),
        }
    }

    /// Zero-filled matrix whose backing pages are first-touched by the
    /// current pool's workers instead of the calling thread. Use for large
    /// outputs that parallel kernels are about to write: the serial zeroing
    /// in [`DenseMatrix::zeros`] is an Amdahl term in front of every
    /// scheduled kernel, and remote-node page placement penalizes every
    /// write after it.
    pub fn zeros_par(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: AlignedVec::first_touch_filled(rows * cols, S::ZERO),
        }
    }

    /// Matrix filled with a constant.
    pub fn constant(rows: usize, cols: usize, v: S) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: AlignedVec::filled(rows * cols, v),
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        DenseMatrix {
            rows,
            cols,
            data: data.into(),
        }
    }

    /// Build by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseMatrix {
            rows,
            cols,
            data: data.into(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the rank `R` for factor matrices).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[S] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrow one row mutably.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [S] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The raw row-major data.
    #[inline]
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// The raw row-major data, mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Set every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(S::ZERO);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> S {
        self.data.iter().map(|&x| x * x).sum::<S>().sqrt()
    }

    /// Gram matrix `A^T A` (`cols x cols`); used by CP-ALS.
    pub fn gram(&self) -> DenseMatrix<S> {
        let r = self.cols;
        let mut g = DenseMatrix::zeros(r, r);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..r {
                let ra = row[a];
                for b in 0..r {
                    g.data[a * r + b] += ra * row[b];
                }
            }
        }
        g
    }

    /// Element-wise (Hadamard) product with another matrix of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &DenseMatrix<S>) -> DenseMatrix<S> {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data: Vec<S> = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: data.into(),
        }
    }

    /// Normalize each column to unit 2-norm, returning the norms.
    /// Zero columns are left untouched and report norm 0.
    pub fn normalize_columns(&mut self) -> Vec<S> {
        let mut norms = vec![S::ZERO; self.cols];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (j, &v) in row.iter().enumerate() {
                norms[j] += v * v;
            }
        }
        for n in &mut norms {
            *n = n.sqrt();
        }
        for i in 0..self.rows {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (j, v) in row.iter_mut().enumerate() {
                if norms[j] != S::ZERO {
                    *v /= norms[j];
                }
            }
        }
        norms
    }

    /// Solve `X * self = rhs` for `X` where `self` is a small `R x R`
    /// symmetric positive (semi-)definite matrix, via Gauss–Jordan with
    /// partial pivoting and Tikhonov fallback. Used by CP-ALS where
    /// `self = hadamard of grams`. Returns `rhs * self^{-1}` row by row.
    pub fn solve_spd_rhs(&self, rhs: &DenseMatrix<S>) -> DenseMatrix<S> {
        assert_eq!(self.rows, self.cols, "system matrix must be square");
        assert_eq!(rhs.cols, self.rows, "rhs width must match system size");
        let r = self.rows;
        // Build augmented inverse of `self` (with a small ridge if singular).
        let mut a: Vec<f64> = self.data.iter().map(|&x| x.to_f64()).collect();
        let mut inv = vec![0.0f64; r * r];
        for i in 0..r {
            inv[i * r + i] = 1.0;
        }
        // Ridge proportional to trace to keep the solve well-posed.
        let trace: f64 = (0..r).map(|i| a[i * r + i]).sum();
        let ridge = 1e-12 * (trace.abs() + 1.0);
        for i in 0..r {
            a[i * r + i] += ridge;
        }
        for col in 0..r {
            // Partial pivot.
            let mut piv = col;
            for row in col + 1..r {
                if a[row * r + col].abs() > a[piv * r + col].abs() {
                    piv = row;
                }
            }
            if piv != col {
                for j in 0..r {
                    a.swap(col * r + j, piv * r + j);
                    inv.swap(col * r + j, piv * r + j);
                }
            }
            let d = a[col * r + col];
            if d == 0.0 {
                continue; // Singular even with ridge; leave row as-is.
            }
            for j in 0..r {
                a[col * r + j] /= d;
                inv[col * r + j] /= d;
            }
            for row in 0..r {
                if row == col {
                    continue;
                }
                let factor = a[row * r + col];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..r {
                    a[row * r + j] -= factor * a[col * r + j];
                    inv[row * r + j] -= factor * inv[col * r + j];
                }
            }
        }
        // X = rhs * inv (rhs is I_n x R, inv is R x R).
        let mut out = DenseMatrix::zeros(rhs.rows, r);
        for i in 0..rhs.rows {
            let src = rhs.row(i);
            let dst = out.row_mut(i);
            for b in 0..r {
                let mut acc = 0.0f64;
                for k in 0..r {
                    acc += src[k].to_f64() * inv[k * r + b];
                }
                dst[b] = S::from_f64(acc);
            }
        }
        out
    }

    /// Storage in bytes (values only), for the accounting of Table 1.
    pub fn storage_bytes(&self) -> u64 {
        self.data.len() as u64 * S::BYTES
    }
}

impl<S: Scalar> Index<(usize, usize)> for DenseMatrix<S> {
    type Output = S;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &S {
        &self.data[i * self.cols + j]
    }
}

impl<S: Scalar> IndexMut<(usize, usize)> for DenseMatrix<S> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut S {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn gram_is_ata() {
        // A = [[1,2],[3,4]]; A^T A = [[10,14],[14,20]]
        let a = DenseMatrix::from_vec(2, 2, vec![1.0f64, 2.0, 3.0, 4.0]);
        let g = a.gram();
        assert_eq!(g.data(), &[10.0, 14.0, 14.0, 20.0]);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0f32, 6.0, 7.0, 8.0]);
        assert_eq!(a.hadamard(&b).data(), &[5.0, 12.0, 21.0, 32.0]);
    }

    #[test]
    fn normalize_columns_returns_norms() {
        let mut a = DenseMatrix::from_vec(2, 2, vec![3.0f64, 0.0, 4.0, 0.0]);
        let norms = a.normalize_columns();
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0);
        assert!((a[(0, 0)] - 0.6).abs() < 1e-12);
        assert!((a[(1, 0)] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn solve_spd_recovers_identity_solution() {
        // self = 2*I, rhs = [[2,4]] => X = [[1,2]]
        let sys = DenseMatrix::from_vec(2, 2, vec![2.0f64, 0.0, 0.0, 2.0]);
        let rhs = DenseMatrix::from_vec(1, 2, vec![2.0, 4.0]);
        let x = sys.solve_spd_rhs(&rhs);
        assert!((x[(0, 0)] - 1.0).abs() < 1e-9);
        assert!((x[(0, 1)] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn solve_spd_handles_near_singular() {
        let sys = DenseMatrix::from_vec(2, 2, vec![1.0f64, 1.0, 1.0, 1.0]);
        let rhs = DenseMatrix::from_vec(1, 2, vec![1.0, 1.0]);
        let x = sys.solve_spd_rhs(&rhs);
        assert!(x.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let a = DenseMatrix::from_vec(1, 2, vec![3.0f32, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn storage_is_simd_aligned() {
        use crate::align::SIMD_ALIGN;
        // Every constructor must produce 64-byte-aligned value storage so
        // the SIMD backend's loads never straddle a line at the head.
        let z = DenseMatrix::<f32>::zeros(5, 7);
        let zp = DenseMatrix::<f64>::zeros_par(13, 3);
        let c = DenseMatrix::constant(4, 4, 1.5f32);
        let v = DenseMatrix::from_vec(2, 3, vec![0.0f64; 6]);
        let f = DenseMatrix::from_fn(3, 3, |i, j| (i + j) as f32);
        assert_eq!(z.data().as_ptr() as usize % SIMD_ALIGN, 0);
        assert_eq!(zp.data().as_ptr() as usize % SIMD_ALIGN, 0);
        assert_eq!(c.data().as_ptr() as usize % SIMD_ALIGN, 0);
        assert_eq!(v.data().as_ptr() as usize % SIMD_ALIGN, 0);
        assert_eq!(f.data().as_ptr() as usize % SIMD_ALIGN, 0);
        assert_eq!(f.clone().data().as_ptr() as usize % SIMD_ALIGN, 0);
    }
}
