//! Dense vector operand for Ttv.

use std::ops::{Index, IndexMut};

use crate::scalar::Scalar;

/// A dense vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector<S: Scalar> {
    data: Vec<S>,
}

impl<S: Scalar> DenseVector<S> {
    /// Zero-filled vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        DenseVector {
            data: vec![S::ZERO; n],
        }
    }

    /// Vector filled with a constant.
    pub fn constant(n: usize, v: S) -> Self {
        DenseVector { data: vec![v; n] }
    }

    /// Wrap an existing `Vec`.
    pub fn from_vec(data: Vec<S>) -> Self {
        DenseVector { data }
    }

    /// Build by evaluating `f(i)` at every position.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> S) -> Self {
        DenseVector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the vector has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Borrow the underlying slice mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> S {
        self.data.iter().map(|&x| x * x).sum::<S>().sqrt()
    }

    /// Scale to unit norm; returns the original norm. A zero vector is left
    /// unchanged and reports norm 0.
    pub fn normalize(&mut self) -> S {
        let n = self.norm2();
        if n != S::ZERO {
            for v in &mut self.data {
                *v /= n;
            }
        }
        n
    }

    /// Dot product.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(&self, other: &DenseVector<S>) -> S {
        assert_eq!(self.len(), other.len());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

impl<S: Scalar> Index<usize> for DenseVector<S> {
    type Output = S;
    #[inline]
    fn index(&self, i: usize) -> &S {
        &self.data[i]
    }
}

impl<S: Scalar> IndexMut<usize> for DenseVector<S> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut S {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let v = DenseVector::from_fn(4, |i| i as f32);
        assert_eq!(v.len(), 4);
        assert_eq!(v[3], 3.0);
        assert!(!v.is_empty());
    }

    #[test]
    fn dot_and_norm() {
        let a = DenseVector::from_vec(vec![3.0f64, 4.0]);
        let b = DenseVector::from_vec(vec![1.0f64, 1.0]);
        assert_eq!(a.dot(&b), 7.0);
        assert!((a.norm2() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_handles_zero_vector() {
        let mut z = DenseVector::<f32>::zeros(3);
        assert_eq!(z.normalize(), 0.0);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);

        let mut v = DenseVector::from_vec(vec![0.0f32, 2.0]);
        let n = v.normalize();
        assert_eq!(n, 2.0);
        assert_eq!(v.as_slice(), &[0.0, 1.0]);
    }
}
