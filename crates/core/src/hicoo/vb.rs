//! Value-blocked HiCOO (vb-HiCOO): a HiCOO variant co-designed with the
//! explicit SIMD backend (see [`crate::simd`]).
//!
//! Plain HiCOO stores one contiguous value array; a block's value run can
//! start at any element offset, so vector loads in block-oriented kernels
//! straddle cache lines. vb-HiCOO pads every block's value run to a multiple
//! of [`crate::simd::pad_unit`] (64 bytes worth of elements) and stores the
//! runs in 64-byte-aligned storage ([`AlignedVec`]): every run starts on a
//! cache-line/vector-register boundary, and whole-array element-wise kernels
//! can stream aligned full lanes with the padding lanes re-zeroed afterwards.
//!
//! The index structure (`bptr`/`binds`/`einds`) is byte-for-byte the HiCOO
//! one — only values move. `bptr` keeps addressing *logical* nonzeros; the
//! extra `vptr` array maps each block to the start of its padded run.

use std::collections::BTreeMap;

use crate::align::{AlignedVec, SIMD_ALIGN};
use crate::error::{Result, TensorError};
use crate::hicoo::HicooTensor;
use crate::scalar::Scalar;
use crate::shape::Shape;
use crate::simd::pad_unit;

/// A sparse tensor in value-blocked HiCOO format.
#[derive(Debug, Clone, PartialEq)]
pub struct VbHicooTensor<S: Scalar> {
    shape: Shape,
    block_bits: u8,
    /// Logical nonzero offsets per block (identical to the source HiCOO).
    bptr: Vec<u64>,
    binds: Vec<Vec<u32>>,
    einds: Vec<Vec<u8>>,
    /// Padded value-run offsets: block `b`'s values live at
    /// `vals[vptr[b]..vptr[b + 1]]`, real entries first, zero padding after.
    /// Every entry is a multiple of [`pad_unit`], so runs are 64-byte
    /// aligned.
    vptr: Vec<u64>,
    vals: AlignedVec<S>,
}

impl<S: Scalar> VbHicooTensor<S> {
    /// Re-lay a HiCOO tensor's values into padded, aligned runs. The index
    /// arrays are shared-structure copies; only values are rearranged.
    pub fn from_hicoo(h: &HicooTensor<S>) -> Self {
        let _span = tenbench_obs::span!("convert.vbhicoo");
        let unit = pad_unit::<S>();
        let nb = h.num_blocks();
        let mut vptr: Vec<u64> = Vec::with_capacity(nb + 1);
        let mut total = 0u64;
        for b in 0..nb {
            vptr.push(total);
            let len = h.block_range(b).len();
            total += len.div_ceil(unit) as u64 * unit as u64;
        }
        vptr.push(total);
        let mut vals = AlignedVec::filled(total as usize, S::ZERO);
        {
            let dst = vals.as_mut_slice();
            for b in 0..nb {
                let r = h.block_range(b);
                let at = vptr[b] as usize;
                dst[at..at + r.len()].copy_from_slice(&h.vals()[r]);
            }
        }
        VbHicooTensor {
            shape: h.shape().clone(),
            block_bits: h.block_bits(),
            bptr: h.bptr().to_vec(),
            binds: h.binds().to_vec(),
            einds: h.einds().to_vec(),
            vptr,
            vals,
        }
    }

    /// Strip the padding back out into a plain HiCOO tensor.
    pub fn to_hicoo(&self) -> HicooTensor<S> {
        let mut vals: Vec<S> = Vec::with_capacity(self.nnz());
        for b in 0..self.num_blocks() {
            vals.extend_from_slice(self.block_vals(b));
        }
        HicooTensor::from_parts_unchecked(
            self.shape.clone(),
            self.block_bits,
            self.bptr.clone(),
            self.binds.clone(),
            self.einds.clone(),
            vals,
        )
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of stored (logical) nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.bptr.last().copied().unwrap_or(0) as usize
    }

    /// Number of nonempty blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.bptr.len().saturating_sub(1)
    }

    /// log2 of the block edge length.
    #[inline]
    pub fn block_bits(&self) -> u8 {
        self.block_bits
    }

    /// Half-open *logical* nonzero range of block `b` (indexes `einds`).
    #[inline]
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        self.bptr[b] as usize..self.bptr[b + 1] as usize
    }

    /// Block coordinate of block `b` in `mode`.
    #[inline]
    pub fn block_ind(&self, b: usize, mode: usize) -> u32 {
        self.binds[mode][b]
    }

    /// The per-mode block coordinate arrays.
    #[inline]
    pub fn binds(&self) -> &[Vec<u32>] {
        &self.binds
    }

    /// The block pointer array (logical nonzero offsets).
    #[inline]
    pub fn bptr(&self) -> &[u64] {
        &self.bptr
    }

    /// The per-mode element (within-block) offset arrays.
    #[inline]
    pub fn einds(&self) -> &[Vec<u8>] {
        &self.einds
    }

    /// The padded value-run offset array (`num_blocks + 1` entries).
    #[inline]
    pub fn vptr(&self) -> &[u64] {
        &self.vptr
    }

    /// The full padded value storage (64-byte aligned).
    #[inline]
    pub fn padded_vals(&self) -> &[S] {
        &self.vals
    }

    /// The full padded value storage, mutably. Callers that write padding
    /// lanes must re-zero them (see [`VbHicooTensor::rezero_padding`]).
    #[inline]
    pub fn padded_vals_mut(&mut self) -> &mut [S] {
        &mut self.vals
    }

    /// The real (unpadded) values of block `b`, starting 64-byte aligned.
    #[inline]
    pub fn block_vals(&self, b: usize) -> &[S] {
        let at = self.vptr[b] as usize;
        &self.vals[at..at + self.block_range(b).len()]
    }

    /// Value of logical nonzero `z` inside block `b`.
    #[inline]
    pub fn val(&self, b: usize, z: usize) -> S {
        self.vals[self.vptr[b] as usize + (z - self.bptr[b] as usize)]
    }

    /// Zero every padding lane. Whole-array element-wise kernels (Tew/Ts
    /// over the padded storage) may leave garbage in the padding — e.g.
    /// `0 / 0` or `0 + s` — and must call this before handing the tensor
    /// back.
    pub fn rezero_padding(&mut self) {
        for b in 0..self.num_blocks() {
            let real = self.block_range(b).len();
            let lo = self.vptr[b] as usize + real;
            let hi = self.vptr[b + 1] as usize;
            self.vals[lo..hi].fill(S::ZERO);
        }
    }

    /// Total padding elements (storage overhead vs. plain HiCOO).
    #[inline]
    pub fn padding_elems(&self) -> usize {
        self.vals.len() - self.nnz()
    }

    /// Storage bytes, including padding: the HiCOO index structure plus the
    /// padded value array and `vptr`.
    pub fn storage_bytes(&self) -> u64 {
        let n = self.order() as u64;
        let nb = self.num_blocks() as u64;
        let m = self.nnz() as u64;
        8 * (nb + 1) * 2 + 4 * n * nb + n * m + self.vals.len() as u64 * S::BYTES
    }

    /// `true` if the block structure and element pattern match (values may
    /// differ) — the same-pattern Tew fast-path requirement. Pattern-equal
    /// vb tensors share `vptr` by construction.
    pub fn same_pattern(&self, other: &VbHicooTensor<S>) -> bool {
        self.shape == other.shape
            && self.block_bits == other.block_bits
            && self.bptr == other.bptr
            && self.binds == other.binds
            && self.einds == other.einds
    }

    /// Coordinate → value map (test helper).
    pub fn to_map(&self) -> BTreeMap<Vec<u32>, f64> {
        self.to_hicoo().to_map()
    }

    /// Check vb-specific invariants on top of the HiCOO ones: `vptr` entries
    /// are [`pad_unit`] multiples, runs fit their blocks, padding lanes are
    /// zero, and the storage base is 64-byte aligned.
    pub fn validate(&self) -> Result<()> {
        self.to_hicoo().validate()?;
        let unit = pad_unit::<S>() as u64;
        if self.vptr.len() != self.bptr.len() {
            return Err(TensorError::InvalidStructure(format!(
                "vptr has {} entries, expected {}",
                self.vptr.len(),
                self.bptr.len()
            )));
        }
        if !(self.vals.as_slice().as_ptr() as usize).is_multiple_of(SIMD_ALIGN) {
            return Err(TensorError::InvalidStructure(
                "value storage is not 64-byte aligned".into(),
            ));
        }
        for b in 0..self.num_blocks() {
            if !self.vptr[b].is_multiple_of(unit) {
                return Err(TensorError::InvalidStructure(format!(
                    "block {b} value run starts at {} (not a multiple of {unit})",
                    self.vptr[b]
                )));
            }
            let real = self.block_range(b).len() as u64;
            let run = self.vptr[b + 1] - self.vptr[b];
            if run < real || run - real >= unit {
                return Err(TensorError::InvalidStructure(format!(
                    "block {b} run length {run} does not pad {real} to a {unit} multiple"
                )));
            }
            let lo = (self.vptr[b] + real) as usize;
            let hi = self.vptr[b + 1] as usize;
            if self.vals[lo..hi].iter().any(|&v| !(v == S::ZERO)) {
                return Err(TensorError::InvalidStructure(format!(
                    "block {b} has nonzero padding lanes"
                )));
            }
        }
        if *self.vptr.last().unwrap_or(&0) != self.vals.len() as u64 {
            return Err(TensorError::InvalidStructure(
                "vptr must end at the padded value length".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::coo::CooTensor;
    use crate::simd::pad_unit;

    use super::*;

    fn sample() -> HicooTensor<f32> {
        let entries: Vec<(Vec<u32>, f32)> = (0..300u32)
            .map(|i| {
                (
                    vec![(i * 3) % 16, (i * 7) % 16, (i * 11) % 16],
                    (i % 9) as f32 - 4.0,
                )
            })
            .collect();
        let coo = CooTensor::from_entries(Shape::new(vec![16, 16, 16]), entries).unwrap();
        HicooTensor::from_coo(&coo, 2).unwrap()
    }

    #[test]
    fn round_trip_preserves_entries() {
        let h = sample();
        let vb = VbHicooTensor::from_hicoo(&h);
        assert!(vb.validate().is_ok());
        assert_eq!(vb.nnz(), h.nnz());
        assert_eq!(vb.to_hicoo(), h);
        assert_eq!(vb.to_map(), h.to_map());
    }

    #[test]
    fn runs_are_padded_and_aligned() {
        let vb = VbHicooTensor::from_hicoo(&sample());
        let unit = pad_unit::<f32>();
        let base = vb.padded_vals().as_ptr() as usize;
        assert_eq!(base % SIMD_ALIGN, 0);
        for b in 0..vb.num_blocks() {
            assert_eq!(vb.vptr()[b] as usize % unit, 0, "block {b}");
            let run = &vb.padded_vals()[vb.vptr()[b] as usize];
            assert_eq!((run as *const f32 as usize) % SIMD_ALIGN, 0, "block {b}");
        }
        assert!(vb.padding_elems() > 0);
        assert_eq!(vb.padded_vals().len(), vb.nnz() + vb.padding_elems());
    }

    #[test]
    fn rezero_padding_restores_invariant() {
        let mut vb = VbHicooTensor::from_hicoo(&sample());
        // Poison every lane, then re-zero; real values stay poisoned but the
        // structure invariant must hold again.
        for v in vb.padded_vals_mut() {
            *v += 1.0;
        }
        assert!(vb.validate().is_err());
        vb.rezero_padding();
        assert!(vb.validate().is_ok());
    }

    #[test]
    fn same_pattern_ignores_values() {
        let h = sample();
        let a = VbHicooTensor::from_hicoo(&h);
        let mut b = a.clone();
        b.padded_vals_mut()[0] = 99.0;
        assert!(a.same_pattern(&b));
    }

    #[test]
    fn empty_tensor_converts() {
        let coo = CooTensor::<f32>::empty(Shape::new(vec![8, 8]));
        let h = HicooTensor::from_coo(&coo, 2).unwrap();
        let vb = VbHicooTensor::from_hicoo(&h);
        assert_eq!(vb.num_blocks(), 0);
        assert_eq!(vb.nnz(), 0);
        assert!(vb.validate().is_ok());
        assert_eq!(vb.to_hicoo(), h);
    }

    #[test]
    fn f64_pad_unit_differs() {
        let entries: Vec<(Vec<u32>, f64)> = (0..50u32)
            .map(|i| (vec![i % 8, (i * 3) % 8], i as f64))
            .collect();
        let coo = CooTensor::from_entries(Shape::new(vec![8, 8]), entries).unwrap();
        let h = HicooTensor::from_coo(&coo, 2).unwrap();
        let vb = VbHicooTensor::from_hicoo(&h);
        assert!(vb.validate().is_ok());
        let unit = pad_unit::<f64>();
        assert_eq!(unit, 8);
        for b in 0..vb.num_blocks() {
            assert_eq!(vb.vptr()[b] as usize % unit, 0);
        }
    }
}
