//! gHiCOO — generalized HiCOO with a per-mode compression choice (paper
//! §3.3, Figure 2(b)).
//!
//! Each mode is either *compressed* (split into a `u32` block index and a
//! `u8` element index, as in HiCOO) or kept *uncompressed* as a plain COO
//! `u32` index array. Blocks are formed over the compressed modes only.
//!
//! The paper introduces gHiCOO for two reasons: hyper-sparse tensors whose
//! blocks hold only a few nonzeros gain nothing from compressing every mode,
//! and Ttv/Ttm only need the indices of the product mode uncompressed —
//! "gHiCOO also provides convenience to implement tensor operations where
//! not all modes are needed during computation". With the product mode
//! uncompressed, every mode-`n` fiber lives inside a single block and the
//! kernels are race-free across blocks.

use std::collections::BTreeMap;

use rayon::prelude::*;

use crate::coo::CooTensor;
use crate::error::{Result, TensorError};
use crate::radix;
use crate::scalar::Scalar;
use crate::shape::Shape;

use super::{check_block_bits, morton};

/// A general sparse tensor in gHiCOO format.
#[derive(Debug, Clone, PartialEq)]
pub struct GHicooTensor<S: Scalar> {
    shape: Shape,
    block_bits: u8,
    compressed: Vec<bool>,
    bptr: Vec<u64>,
    /// Block indices per compressed mode (empty for uncompressed modes).
    binds: Vec<Vec<u32>>,
    /// Element indices per compressed mode (empty for uncompressed modes).
    einds: Vec<Vec<u8>>,
    /// Full `u32` indices per uncompressed mode (empty for compressed modes).
    finds: Vec<Vec<u32>>,
    vals: Vec<S>,
}

/// Fiber decomposition of a gHiCOO tensor whose single uncompressed mode is
/// the product mode: `fptr` delimits fibers in nonzero offsets and
/// `block_fiber_ptr` delimits each block's fibers, so outputs can be
/// assembled block by block without races.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhFiberPartition {
    /// The product mode.
    pub mode: usize,
    /// Start offset of each fiber plus a final sentinel (`M_F + 1` entries).
    pub fptr: Vec<usize>,
    /// Start fiber of each block plus a final sentinel (`n_b + 1` entries).
    pub block_fiber_ptr: Vec<usize>,
}

impl GhFiberPartition {
    /// Number of fibers (`M_F`).
    #[inline]
    pub fn num_fibers(&self) -> usize {
        self.fptr.len().saturating_sub(1)
    }

    /// Half-open nonzero range of fiber `f`.
    #[inline]
    pub fn fiber_range(&self, f: usize) -> std::ops::Range<usize> {
        self.fptr[f]..self.fptr[f + 1]
    }

    /// Half-open fiber range of block `b`.
    #[inline]
    pub fn block_fibers(&self, b: usize) -> std::ops::Range<usize> {
        self.block_fiber_ptr[b]..self.block_fiber_ptr[b + 1]
    }
}

impl<S: Scalar> GHicooTensor<S> {
    /// Convert from COO. `compressed[m]` chooses per mode; blocks are formed
    /// over the compressed modes. Nonzeros are ordered by (Morton block key,
    /// compressed element coords, uncompressed coords ascending by mode).
    pub fn from_coo(coo: &CooTensor<S>, block_bits: u8, compressed: &[bool]) -> Result<Self> {
        check_block_bits(block_bits)?;
        let order = coo.order();
        if compressed.len() != order {
            return Err(TensorError::InvalidCompressionPlan {
                flags: compressed.len(),
                order,
            });
        }
        let m = coo.nnz();
        let cmodes: Vec<usize> = (0..order).filter(|&md| compressed[md]).collect();
        let umodes: Vec<usize> = (0..order).filter(|&md| !compressed[md]).collect();

        // Sort permutation: Morton over compressed block coords, then
        // compressed coords, then uncompressed coords. Up to four compressed
        // modes go through the radix pipeline; beyond that the comparison
        // fallback handles the (unused in the paper) general case.
        let mut perm: Vec<u32> = (0..m as u32).collect();
        if cmodes.len() <= 4 {
            ghicoo_perm_radix(
                coo.inds(),
                coo.shape().dims(),
                block_bits,
                &cmodes,
                &umodes,
                &mut perm,
            );
        } else {
            let inds = coo.inds();
            let cm = &cmodes;
            let um = &umodes;
            perm.par_sort_unstable_by(|&a, &b| {
                let (a, b) = (a as usize, b as usize);
                let bca: Vec<u32> = cm.iter().map(|&md| inds[md][a] >> block_bits).collect();
                let bcb: Vec<u32> = cm.iter().map(|&md| inds[md][b] >> block_bits).collect();
                morton::morton_cmp(&bca, &bcb)
                    .then_with(|| {
                        for &md in cm {
                            match inds[md][a].cmp(&inds[md][b]) {
                                std::cmp::Ordering::Equal => continue,
                                ord => return ord,
                            }
                        }
                        std::cmp::Ordering::Equal
                    })
                    .then_with(|| {
                        for &md in um {
                            match inds[md][a].cmp(&inds[md][b]) {
                                std::cmp::Ordering::Equal => continue,
                                ord => return ord,
                            }
                        }
                        std::cmp::Ordering::Equal
                    })
                    // Index tie-break: identical result to the stable radix
                    // pipeline on duplicate coordinates.
                    .then(a.cmp(&b))
            });
        }

        let emask = (1u32 << block_bits) - 1;
        let mut bptr: Vec<u64> = Vec::new();
        let mut binds: Vec<Vec<u32>> = vec![Vec::new(); order];
        let mut einds: Vec<Vec<u8>> = vec![Vec::new(); order];
        let mut finds: Vec<Vec<u32>> = vec![Vec::new(); order];
        let mut vals: Vec<S> = Vec::with_capacity(m);
        for &md in &cmodes {
            einds[md].reserve(m);
        }
        for &md in &umodes {
            finds[md].reserve(m);
        }

        let mut prev_block: Vec<u32> = vec![u32::MAX; cmodes.len()];
        for (pos, &p) in perm.iter().enumerate() {
            let p = p as usize;
            let mut new_block = bptr.is_empty();
            for (ci, &md) in cmodes.iter().enumerate() {
                if coo.mode_inds(md)[p] >> block_bits != prev_block[ci] {
                    new_block = true;
                }
            }
            if new_block {
                bptr.push(pos as u64);
                for (ci, &md) in cmodes.iter().enumerate() {
                    prev_block[ci] = coo.mode_inds(md)[p] >> block_bits;
                    binds[md].push(prev_block[ci]);
                }
            }
            for &md in &cmodes {
                einds[md].push((coo.mode_inds(md)[p] & emask) as u8);
            }
            for &md in &umodes {
                finds[md].push(coo.mode_inds(md)[p]);
            }
            vals.push(coo.vals()[p]);
        }
        bptr.push(m as u64);

        Ok(GHicooTensor {
            shape: coo.shape().clone(),
            block_bits,
            compressed: compressed.to_vec(),
            bptr,
            binds,
            einds,
            finds,
            vals,
        })
    }

    /// Convert from COO leaving exactly `mode` uncompressed — the layout the
    /// paper uses for mode-`n` Ttv and Ttm.
    pub fn from_coo_for_mode(coo: &CooTensor<S>, block_bits: u8, mode: usize) -> Result<Self> {
        coo.shape().check_mode(mode)?;
        let compressed: Vec<bool> = (0..coo.order()).map(|m| m != mode).collect();
        Self::from_coo(coo, block_bits, &compressed)
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of blocks over the compressed modes.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.bptr.len().saturating_sub(1)
    }

    /// log2 of the block edge length.
    #[inline]
    pub fn block_bits(&self) -> u8 {
        self.block_bits
    }

    /// Per-mode compression flags.
    #[inline]
    pub fn compressed(&self) -> &[bool] {
        &self.compressed
    }

    /// Half-open nonzero range of block `b`.
    #[inline]
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        self.bptr[b] as usize..self.bptr[b + 1] as usize
    }

    /// Block coordinate of block `b` in a compressed `mode`.
    #[inline]
    pub fn block_ind(&self, b: usize, mode: usize) -> u32 {
        debug_assert!(self.compressed[mode]);
        self.binds[mode][b]
    }

    /// Element index array of a compressed mode.
    #[inline]
    pub fn eind(&self, mode: usize) -> &[u8] {
        debug_assert!(self.compressed[mode]);
        &self.einds[mode]
    }

    /// Full index array of an uncompressed mode.
    #[inline]
    pub fn find(&self, mode: usize) -> &[u32] {
        debug_assert!(!self.compressed[mode]);
        &self.finds[mode]
    }

    /// The values.
    #[inline]
    pub fn vals(&self) -> &[S] {
        &self.vals
    }

    /// Reconstruct the full coordinate of nonzero `x` inside block `b`.
    pub fn coord_of(&self, b: usize, x: usize, buf: &mut [u32]) {
        for mode in 0..self.order() {
            buf[mode] = if self.compressed[mode] {
                (self.binds[mode][b] << self.block_bits) | self.einds[mode][x] as u32
            } else {
                self.finds[mode][x]
            };
        }
    }

    /// Compute the mode-`mode` fiber partition. Requires `mode` to be the
    /// tensor's only uncompressed mode (the Ttv/Ttm layout), which guarantees
    /// each fiber is contiguous and contained in one block.
    pub fn fibers(&self, mode: usize) -> Result<GhFiberPartition> {
        self.shape.check_mode(mode)?;
        let valid_plan = !self.compressed[mode]
            && self
                .compressed
                .iter()
                .enumerate()
                .all(|(m, &c)| c || m == mode);
        if !valid_plan {
            return Err(TensorError::InvalidStructure(format!(
                "fiber partition requires mode {mode} to be the only uncompressed mode"
            )));
        }
        let cmodes: Vec<usize> = (0..self.order()).filter(|&m| m != mode).collect();
        let mut fptr: Vec<usize> = Vec::new();
        let mut block_fiber_ptr: Vec<usize> = Vec::with_capacity(self.num_blocks() + 1);
        for b in 0..self.num_blocks() {
            block_fiber_ptr.push(fptr.len());
            let range = self.block_range(b);
            let start = range.start;
            for x in range {
                let new_fiber = x == start
                    || cmodes
                        .iter()
                        .any(|&md| self.einds[md][x] != self.einds[md][x - 1]);
                if new_fiber {
                    fptr.push(x);
                }
            }
        }
        block_fiber_ptr.push(fptr.len());
        fptr.push(self.nnz());
        Ok(GhFiberPartition {
            mode,
            fptr,
            block_fiber_ptr,
        })
    }

    /// Expand to COO.
    pub fn to_coo(&self) -> CooTensor<S> {
        let order = self.order();
        let m = self.nnz();
        let mut inds: Vec<Vec<u32>> = vec![Vec::with_capacity(m); order];
        let mut buf = vec![0u32; order];
        for b in 0..self.num_blocks() {
            for x in self.block_range(b) {
                self.coord_of(b, x, &mut buf);
                for (mode, arr) in inds.iter_mut().enumerate() {
                    arr.push(buf[mode]);
                }
            }
        }
        CooTensor::from_parts_unchecked(
            self.shape.clone(),
            inds,
            self.vals.clone(),
            crate::coo::SortState::Unsorted,
        )
    }

    /// Coordinate → value map (test helper).
    pub fn to_map(&self) -> BTreeMap<Vec<u32>, f64> {
        self.to_coo().to_map()
    }

    /// Storage bytes: compressed modes cost `4 n_b + M` each, uncompressed
    /// modes `4M` each, plus `8(n_b + 1)` block pointers and the values.
    pub fn storage_bytes(&self) -> u64 {
        let nb = self.num_blocks() as u64;
        let m = self.nnz() as u64;
        let ncomp = self.compressed.iter().filter(|&&c| c).count() as u64;
        let nuncomp = self.order() as u64 - ncomp;
        8 * (nb + 1) + ncomp * (4 * nb + m) + nuncomp * 4 * m + m * S::BYTES
    }

    /// Check structural invariants.
    pub fn validate(&self) -> Result<()> {
        if self.bptr.first() != Some(&0) || *self.bptr.last().unwrap_or(&0) != self.nnz() as u64 {
            return Err(TensorError::InvalidStructure(
                "bptr must start at 0 and end at nnz".into(),
            ));
        }
        let mut buf = vec![0u32; self.order()];
        for b in 0..self.num_blocks() {
            if self.bptr[b] >= self.bptr[b + 1] {
                return Err(TensorError::InvalidStructure(format!(
                    "block {b} is empty or bptr not strictly increasing"
                )));
            }
            for x in self.block_range(b) {
                self.coord_of(b, x, &mut buf);
                self.shape.check_coord(&buf)?;
            }
        }
        Ok(())
    }
}

/// Radix permutation for gHiCOO's mixed ordering: (Morton block key over the
/// compressed modes, compressed coords lex, uncompressed coords lex, original
/// index). When everything packs into 128 bits a single key per nonzero is
/// sorted in one go; otherwise stable LSD passes run least-significant group
/// first (uncompressed coords, then compressed coords, then the Morton block
/// key), which composes to the same total order. Within one Morton block the
/// per-mode block coords are all equal, so full-coordinate order equals
/// element-offset order — matching the comparator fallback exactly.
fn ghicoo_perm_radix(
    inds: &[Vec<u32>],
    dims: &[u32],
    block_bits: u8,
    cmodes: &[usize],
    umodes: &[usize],
    perm: &mut Vec<u32>,
) {
    let ncm = cmodes.len();
    let bb = block_bits as usize;
    let maxbits = cmodes
        .iter()
        .map(|&md| radix::bits_for(dims[md].saturating_sub(1) >> block_bits) as usize)
        .max()
        .unwrap_or(0);
    let uwidths: Vec<usize> = umodes
        .iter()
        .map(|&md| radix::bits_for(dims[md].saturating_sub(1)) as usize)
        .collect();
    let ubits: usize = uwidths.iter().sum();
    let total_bits = ncm * (maxbits + bb) + ubits;
    if total_bits == 0 {
        return;
    }

    if total_bits <= 128 {
        let emask = (1u32 << block_bits) - 1;
        let keys: Vec<u128> = (0..perm.len())
            .into_par_iter()
            .with_min_len(4096)
            .map(|i| {
                let mut key: u128 = if ncm == 0 {
                    0
                } else {
                    let mut bc = [0u32; 4];
                    for (ci, &md) in cmodes.iter().enumerate() {
                        bc[ci] = inds[md][i] >> block_bits;
                    }
                    morton::interleave_key_bits(&bc[..ncm], maxbits)
                };
                for &md in cmodes {
                    key = (key << bb) | (inds[md][i] & emask) as u128;
                }
                for (u, &md) in umodes.iter().enumerate() {
                    key = (key << uwidths[u]) | inds[md][i] as u128;
                }
                key
            })
            .collect();
        let max_key = if total_bits >= 128 {
            u128::MAX
        } else {
            (1u128 << total_bits) - 1
        };
        radix::sort_perm_by_u128_keys(perm, &keys, max_key);
        return;
    }

    // Hybrid multi-key path: each stage is stable, so running them from the
    // least significant group upward yields the packed-key order.
    for &md in umodes.iter().rev() {
        let arr = &inds[md];
        radix::sort_perm_by_u32_key(perm, |p| arr[p as usize], dims[md].saturating_sub(1));
    }
    for &md in cmodes.iter().rev() {
        let arr = &inds[md];
        radix::sort_perm_by_u32_key(perm, |p| arr[p as usize], dims[md].saturating_sub(1));
    }
    if ncm > 0 && maxbits > 0 {
        let keys: Vec<u128> = (0..perm.len())
            .into_par_iter()
            .with_min_len(4096)
            .map(|i| {
                let mut bc = [0u32; 4];
                for (ci, &md) in cmodes.iter().enumerate() {
                    bc[ci] = inds[md][i] >> block_bits;
                }
                morton::interleave_key_bits(&bc[..ncm], maxbits)
            })
            .collect();
        let mbits = ncm * maxbits;
        let max_key = if mbits >= 128 {
            u128::MAX
        } else {
            (1u128 << mbits) - 1
        };
        radix::sort_perm_by_u128_keys(perm, &keys, max_key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4, 4]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 3], 2.0),
                (vec![0, 1, 0], 3.0),
                (vec![1, 0, 2], 4.0),
                (vec![2, 2, 1], 5.0),
                (vec![3, 3, 0], 6.0),
                (vec![3, 3, 3], 7.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_for_mode() {
        let coo = sample();
        for mode in 0..3 {
            let g = GHicooTensor::from_coo_for_mode(&coo, 1, mode).unwrap();
            assert_eq!(g.to_map(), coo.to_map(), "mode {mode}");
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn compression_plan_must_match_order() {
        let coo = sample();
        assert!(matches!(
            GHicooTensor::from_coo(&coo, 1, &[true, false]),
            Err(TensorError::InvalidCompressionPlan { .. })
        ));
    }

    #[test]
    fn all_uncompressed_degenerates_to_one_block() {
        let coo = sample();
        let g = GHicooTensor::from_coo(&coo, 1, &[false, false, false]).unwrap();
        assert_eq!(g.num_blocks(), 1);
        assert_eq!(g.to_map(), coo.to_map());
    }

    #[test]
    fn fibers_are_contiguous_and_block_local() {
        let coo = sample();
        let g = GHicooTensor::from_coo_for_mode(&coo, 1, 2).unwrap();
        let fp = g.fibers(2).unwrap();
        // Fibers in mode 2: (0,0,*)x2, (0,1,*), (1,0,*), (2,2,*), (3,3,*)x2.
        assert_eq!(fp.num_fibers(), 5);
        let total: usize = (0..fp.num_fibers()).map(|f| fp.fiber_range(f).len()).sum();
        assert_eq!(total, coo.nnz());
        // Every block's fibers cover exactly its nonzero range.
        for b in 0..g.num_blocks() {
            let fr = fp.block_fibers(b);
            assert_eq!(fp.fptr[fr.start], g.block_range(b).start);
            assert_eq!(fp.fptr[fr.end], g.block_range(b).end);
        }
    }

    #[test]
    fn fibers_reject_wrong_plan() {
        let coo = sample();
        let g = GHicooTensor::from_coo(&coo, 1, &[true, true, true]).unwrap();
        assert!(g.fibers(2).is_err());
        let g2 = GHicooTensor::from_coo(&coo, 1, &[false, false, true]).unwrap();
        assert!(g2.fibers(0).is_err()); // two uncompressed modes
    }

    #[test]
    fn storage_accounts_for_mixed_modes() {
        let coo = sample();
        let g = GHicooTensor::from_coo_for_mode(&coo, 1, 2).unwrap();
        let nb = g.num_blocks() as u64;
        let m = g.nnz() as u64;
        assert_eq!(
            g.storage_bytes(),
            8 * (nb + 1) + 2 * (4 * nb + m) + 4 * m + 4 * m
        );
    }
}
