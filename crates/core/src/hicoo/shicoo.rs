//! sHiCOO — semi-sparse HiCOO (paper §3.3, Figure 2(c)).
//!
//! The HiCOO analogue of sCOO: the sparse modes are block-compressed
//! (32-bit block + 8-bit element indices) while one dense mode is stored as
//! a dense stripe per fiber. This is the output format of HiCOO-Ttm.

use std::collections::BTreeMap;

use crate::coo::SemiSparseTensor;
use crate::error::{Result, TensorError};
use crate::scalar::Scalar;
use crate::shape::Shape;

use super::check_block_bits;

/// A semi-sparse tensor in HiCOO form: blocked sparse modes, one dense mode.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiSparseHicooTensor<S: Scalar> {
    shape: Shape,
    block_bits: u8,
    dense_mode: usize,
    /// Fiber offsets per block: block `b` owns fibers `bptr[b]..bptr[b+1]`.
    bptr: Vec<u64>,
    /// Block indices per sparse mode (empty at the dense mode), length `n_b`.
    binds: Vec<Vec<u32>>,
    /// Element indices per sparse mode (empty at the dense mode), length `M_F`.
    einds: Vec<Vec<u8>>,
    /// `M_F * dense_size` values, fiber-major.
    vals: Vec<S>,
}

impl<S: Scalar> SemiSparseHicooTensor<S> {
    /// Build from parts, validating the structure.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        shape: Shape,
        block_bits: u8,
        dense_mode: usize,
        bptr: Vec<u64>,
        binds: Vec<Vec<u32>>,
        einds: Vec<Vec<u8>>,
        vals: Vec<S>,
    ) -> Result<Self> {
        check_block_bits(block_bits)?;
        shape.check_mode(dense_mode)?;
        let t = SemiSparseHicooTensor {
            shape,
            block_bits,
            dense_mode,
            bptr,
            binds,
            einds,
            vals,
        };
        t.validate()?;
        Ok(t)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts_unchecked(
        shape: Shape,
        block_bits: u8,
        dense_mode: usize,
        bptr: Vec<u64>,
        binds: Vec<Vec<u32>>,
        einds: Vec<Vec<u8>>,
        vals: Vec<S>,
    ) -> Self {
        let t = SemiSparseHicooTensor {
            shape,
            block_bits,
            dense_mode,
            bptr,
            binds,
            einds,
            vals,
        };
        debug_assert!(t.validate().is_ok());
        t
    }

    /// The tensor shape (the dense mode's size is the stripe length).
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Which mode is dense.
    #[inline]
    pub fn dense_mode(&self) -> usize {
        self.dense_mode
    }

    /// Length of each dense stripe.
    #[inline]
    pub fn dense_size(&self) -> usize {
        self.shape.dim(self.dense_mode) as usize
    }

    /// log2 of the block edge length.
    #[inline]
    pub fn block_bits(&self) -> u8 {
        self.block_bits
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.bptr.len().saturating_sub(1)
    }

    /// Number of sparse fibers (`M_F`).
    pub fn num_fibers(&self) -> usize {
        self.einds
            .iter()
            .enumerate()
            .find(|&(m, _)| m != self.dense_mode)
            .map_or(0, |(_, a)| a.len())
    }

    /// Half-open fiber range of block `b`.
    #[inline]
    pub fn block_fibers(&self, b: usize) -> std::ops::Range<usize> {
        self.bptr[b] as usize..self.bptr[b + 1] as usize
    }

    /// The dense stripe of fiber `f`.
    #[inline]
    pub fn fiber_vals(&self, f: usize) -> &[S] {
        let r = self.dense_size();
        &self.vals[f * r..(f + 1) * r]
    }

    /// All values, fiber-major.
    #[inline]
    pub fn vals(&self) -> &[S] {
        &self.vals
    }

    /// Reconstruct the sparse coordinate of fiber `f` in block `b`, writing
    /// into `buf` (the dense mode's slot is left untouched).
    pub fn fiber_coord(&self, b: usize, f: usize, buf: &mut [u32]) {
        for mode in 0..self.order() {
            if mode != self.dense_mode {
                buf[mode] = (self.binds[mode][b] << self.block_bits) | self.einds[mode][f] as u32;
            }
        }
    }

    /// Expand to sCOO.
    pub fn to_scoo(&self) -> SemiSparseTensor<S> {
        let order = self.order();
        let mf = self.num_fibers();
        let mut inds: Vec<Vec<u32>> = vec![Vec::new(); order];
        for (m, arr) in inds.iter_mut().enumerate() {
            if m != self.dense_mode {
                arr.reserve(mf);
            }
        }
        let mut buf = vec![0u32; order];
        for b in 0..self.num_blocks() {
            for f in self.block_fibers(b) {
                self.fiber_coord(b, f, &mut buf);
                for (m, arr) in inds.iter_mut().enumerate() {
                    if m != self.dense_mode {
                        arr.push(buf[m]);
                    }
                }
            }
        }
        SemiSparseTensor::from_parts_unchecked(
            self.shape.clone(),
            self.dense_mode,
            inds,
            self.vals.clone(),
        )
    }

    /// Coordinate → value map of numerically nonzero values (test helper).
    pub fn to_map(&self) -> BTreeMap<Vec<u32>, f64> {
        self.to_scoo().to_map()
    }

    /// Storage bytes: `8(n_b+1)` pointers, per sparse mode `4 n_b` block
    /// indices and `M_F` element indices, plus the dense values.
    pub fn storage_bytes(&self) -> u64 {
        let nb = self.num_blocks() as u64;
        let mf = self.num_fibers() as u64;
        let nsparse = self.order() as u64 - 1;
        8 * (nb + 1) + nsparse * (4 * nb + mf) + self.vals.len() as u64 * S::BYTES
    }

    /// Check structural invariants.
    pub fn validate(&self) -> Result<()> {
        let mf = self.num_fibers();
        let nb = self.num_blocks();
        if self.bptr.first() != Some(&0) || *self.bptr.last().unwrap_or(&0) != mf as u64 {
            return Err(TensorError::InvalidStructure(
                "bptr must start at 0 and end at fiber count".into(),
            ));
        }
        if !self.binds[self.dense_mode].is_empty() || !self.einds[self.dense_mode].is_empty() {
            return Err(TensorError::InvalidStructure(
                "dense mode must not carry sparse indices".into(),
            ));
        }
        for (m, arr) in self.einds.iter().enumerate() {
            if m != self.dense_mode && arr.len() != mf {
                return Err(TensorError::InvalidStructure(format!(
                    "mode-{m} einds length {} != fiber count {mf}",
                    arr.len()
                )));
            }
        }
        for (m, arr) in self.binds.iter().enumerate() {
            if m != self.dense_mode && arr.len() != nb {
                return Err(TensorError::InvalidStructure(format!(
                    "mode-{m} binds length {} != block count {nb}",
                    arr.len()
                )));
            }
        }
        if self.vals.len() != mf * self.dense_size() {
            return Err(TensorError::InvalidStructure(format!(
                "value count {} != fibers {mf} * dense size {}",
                self.vals.len(),
                self.dense_size()
            )));
        }
        let mut buf = vec![0u32; self.order()];
        for b in 0..nb {
            for f in self.block_fibers(b) {
                self.fiber_coord(b, f, &mut buf);
                buf[self.dense_mode] = 0;
                self.shape.check_coord(&buf)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4x4x3 tensor, dense in mode 2 (R=3), with three fibers in two
    /// 2x2 blocks over modes (0,1): fibers (0,1,:), (1,0,:) in block (0,0)
    /// and (3,2,:) in block (1,1).
    fn sample() -> SemiSparseHicooTensor<f32> {
        SemiSparseHicooTensor::from_parts(
            Shape::new(vec![4, 4, 3]),
            1,
            2,
            vec![0, 2, 3],
            vec![vec![0, 1], vec![0, 1], vec![]],
            vec![vec![0, 1, 1], vec![1, 0, 0], vec![]],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 0.0, 9.0],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.num_fibers(), 3);
        assert_eq!(t.num_blocks(), 2);
        assert_eq!(t.dense_size(), 3);
        assert_eq!(t.fiber_vals(2), &[7.0, 0.0, 9.0]);
        assert_eq!(t.block_fibers(1), 2..3);
    }

    #[test]
    fn fiber_coord_reconstruction() {
        let t = sample();
        let mut buf = vec![0u32; 3];
        t.fiber_coord(1, 2, &mut buf);
        assert_eq!(&buf[0..2], &[3, 2]); // block (1,1)<<1 | eind (1,0)
    }

    #[test]
    fn to_scoo_round_trip() {
        let t = sample();
        let s = t.to_scoo();
        assert_eq!(s.num_fibers(), 3);
        assert!(s.validate().is_ok());
        let m = t.to_map();
        assert_eq!(m[&vec![3, 2, 2]], 9.0);
        assert!(!m.contains_key(&vec![3, 2, 1])); // numerical zero skipped
    }

    #[test]
    fn validate_rejects_bad_bptr() {
        let r = SemiSparseHicooTensor::<f32>::from_parts(
            Shape::new(vec![4, 4, 3]),
            1,
            2,
            vec![0, 5],
            vec![vec![0], vec![0], vec![]],
            vec![vec![0], vec![1], vec![]],
            vec![1.0, 2.0, 3.0],
        );
        assert!(r.is_err());
    }

    #[test]
    fn storage_formula() {
        let t = sample();
        // 8*3 + 2*(4*2 + 3) + 9*4 = 24 + 22 + 36 = 82
        assert_eq!(t.storage_bytes(), 82);
    }
}
