//! Morton (Z-order) utilities for block sorting.
//!
//! HiCOO construction sorts nonzeros by the Morton order of their block
//! coordinates, which gives blocks good multi-dimensional locality (paper
//! §3.3: "data locality is increased due to blocking and Morton order
//! sorting"). Two implementations are provided: packed 128-bit keys for
//! orders up to 4 (every tensor in the paper's datasets) and a
//! comparison-based fallback for higher orders.

use std::cmp::Ordering;

/// Interleave the bits of up to four 32-bit coordinates into one 128-bit
/// Morton key. Bit `b` of mode `m` lands at position `b * order + (order -
/// 1 - m)`, so mode 0 is the most significant at each bit level.
///
/// # Panics
/// Panics if `coords.len() > 4` (the packed key would overflow 128 bits).
pub fn interleave_key(coords: &[u32]) -> u128 {
    interleave_key_bits(coords, 32)
}

/// Interleave only the low `bits` bits of each coordinate. When every
/// coordinate is below `2^bits` this orders identically to
/// [`interleave_key`] while producing a key of only `bits * order` bits —
/// the compact form the radix conversion pipeline packs element indices
/// next to.
///
/// # Panics
/// Panics if `coords.len() > 4` or if `bits * coords.len() > 128`.
pub fn interleave_key_bits(coords: &[u32], bits: usize) -> u128 {
    let order = coords.len();
    assert!(
        (1..=4).contains(&order),
        "packed Morton keys support order 1..=4"
    );
    assert!(bits * order <= 128, "packed Morton key overflows 128 bits");
    let mut key: u128 = 0;
    for b in 0..bits.min(32) {
        for (m, &c) in coords.iter().enumerate() {
            let bit = ((c >> b) & 1) as u128;
            key |= bit << (b * order + (order - 1 - m));
        }
    }
    key
}

/// `true` if the most significant set bit of `a ^ b`-style comparison says
/// `x`'s highest differing bit is below `y`'s (the classic "less msb" test).
#[inline]
fn less_msb(x: u32, y: u32) -> bool {
    x < y && x < (x ^ y)
}

/// Compare two coordinate tuples in Morton order without materializing keys.
/// Works for any tensor order. Mode 0 is most significant at equal bit
/// levels, matching [`interleave_key`].
pub fn morton_cmp(a: &[u32], b: &[u32]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    let mut msd = 0usize; // mode with the most significant differing bit
    let mut best = 0u32; // XOR value at that mode
    for m in 0..a.len() {
        let x = a[m] ^ b[m];
        if less_msb(best, x) {
            msd = m;
            best = x;
        }
    }
    if best == 0 {
        Ordering::Equal
    } else {
        a[msd].cmp(&b[msd])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_matches_hand_computation() {
        // 2D: (1, 0) -> bit 0 of mode 0 at position 0*2 + (2-1-0) = 1 -> key 2.
        assert_eq!(interleave_key(&[1, 0]), 2);
        assert_eq!(interleave_key(&[0, 1]), 1);
        assert_eq!(interleave_key(&[1, 1]), 3);
        // 3D: (1,0,0)->4, (0,1,0)->2, (0,0,1)->1.
        assert_eq!(interleave_key(&[1, 0, 0]), 4);
        assert_eq!(interleave_key(&[0, 1, 0]), 2);
        assert_eq!(interleave_key(&[0, 0, 1]), 1);
    }

    #[test]
    fn interleave_handles_high_bits() {
        let k = interleave_key(&[u32::MAX, 0, 0, 0]);
        // Mode 0 bits occupy positions 3, 7, 11, ..., 127.
        let expect = (0..32).fold(0u128, |acc, b| acc | (1u128 << (b * 4 + 3)));
        assert_eq!(k, expect);
    }

    #[test]
    fn cmp_agrees_with_packed_keys() {
        let cases = [
            (vec![0u32, 0, 0], vec![0u32, 0, 1]),
            (vec![5, 3, 2], vec![5, 3, 2]),
            (vec![7, 0, 0], vec![0, 7, 7]),
            (vec![1, 2, 3], vec![3, 2, 1]),
            (vec![123, 456, 789], vec![123, 457, 788]),
            (vec![u32::MAX, 0, 0], vec![0, u32::MAX, u32::MAX]),
        ];
        for (a, b) in cases {
            let packed = interleave_key(&a).cmp(&interleave_key(&b));
            assert_eq!(morton_cmp(&a, &b), packed, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn cmp_is_total_order_on_small_grid() {
        // Collect all 3D coords in a 4^3 grid, sort by morton_cmp, and check
        // the result equals sorting by packed key.
        let mut coords: Vec<Vec<u32>> = (0..4)
            .flat_map(|i| (0..4).flat_map(move |j| (0..4).map(move |k| vec![i, j, k])))
            .collect();
        // Reference side: cache each key once instead of re-interleaving on
        // every comparison, and sort unstably (keys are unique here).
        let mut keyed: Vec<(u128, Vec<u32>)> = coords
            .iter()
            .map(|c| (interleave_key(c), c.clone()))
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        let by_key: Vec<Vec<u32>> = keyed.into_iter().map(|(_, c)| c).collect();
        coords.sort_unstable_by(|a, b| morton_cmp(a, b));
        assert_eq!(coords, by_key);
    }

    #[test]
    fn cmp_supports_order_above_four() {
        let a = vec![1u32, 0, 0, 0, 0, 0];
        let b = vec![0u32, 0, 0, 0, 0, 1];
        assert_eq!(morton_cmp(&a, &b), Ordering::Greater);
        assert_eq!(morton_cmp(&b, &a), Ordering::Less);
        assert_eq!(morton_cmp(&a, &a), Ordering::Equal);
    }
}
