//! Hierarchical coordinate (HiCOO) format and its variants (paper §3.3,
//! Figure 2).
//!
//! HiCOO partitions the index space into cubical blocks of edge length
//! `B = 2^block_bits`, sorts nonzeros by the Morton order of their block
//! coordinates, and stores:
//!
//! * `bptr` — start offset of each block's nonzeros (`u64`),
//! * `binds` — one `u32` block-coordinate array per mode (length `n_b`),
//! * `einds` — one `u8` within-block offset array per mode (length `M`),
//! * `vals` — the values.
//!
//! With the paper's default `B = 128` the element indices fit in 8 bits,
//! which is where HiCOO's compression comes from. This module also provides
//! the paper's two new variants: [`GHicooTensor`] (gHiCOO — per-mode choice
//! of compression, used by Ttv/Ttm to leave the product mode uncompressed)
//! and [`SemiSparseHicooTensor`] (sHiCOO — semi-sparse, the HiCOO analogue
//! of sCOO).

mod ghicoo;
pub mod morton;
mod shicoo;
pub mod vb;

pub use ghicoo::{GHicooTensor, GhFiberPartition};
pub use shicoo::SemiSparseHicooTensor;
pub use vb::VbHicooTensor;

use std::collections::BTreeMap;

use rayon::prelude::*;

use crate::coo::{CooTensor, SortState};
use crate::error::{Result, TensorError};
use crate::scalar::Scalar;
use crate::shape::Shape;

/// Validate the block-bits parameter: element indices are stored in `u8`, so
/// the block edge `2^bits` must be at most 256.
pub(crate) fn check_block_bits(block_bits: u8) -> Result<()> {
    if (1..=8).contains(&block_bits) {
        Ok(())
    } else {
        Err(TensorError::InvalidBlockBits(block_bits))
    }
}

/// A general sparse tensor in HiCOO format.
#[derive(Debug, Clone, PartialEq)]
pub struct HicooTensor<S: Scalar> {
    shape: Shape,
    block_bits: u8,
    bptr: Vec<u64>,
    binds: Vec<Vec<u32>>,
    einds: Vec<Vec<u8>>,
    vals: Vec<S>,
}

impl<S: Scalar> HicooTensor<S> {
    /// Convert from COO with block edge `2^block_bits` (the paper's default
    /// is `B = 128`, i.e. `block_bits = 7`). The input is cloned and
    /// Morton-sorted; use [`HicooTensor::from_coo_inplace`] to reuse an
    /// existing tensor's allocation and keep its new sort order.
    ///
    /// # Examples
    /// ```
    /// use tenbench_core::prelude::*;
    ///
    /// let x = CooTensor::<f32>::from_entries(
    ///     Shape::new(vec![256, 256, 256]),
    ///     vec![(vec![0, 1, 2], 1.0), (vec![3, 2, 1], 2.0), (vec![200, 200, 200], 3.0)],
    /// )?;
    /// let h = HicooTensor::from_coo(&x, 7)?; // B = 128
    /// assert_eq!(h.num_blocks(), 2);         // corner block + (200,200,200)'s block
    /// assert_eq!(h.to_map(), x.to_map());
    /// # Ok::<(), TensorError>(())
    /// ```
    pub fn from_coo(coo: &CooTensor<S>, block_bits: u8) -> Result<Self> {
        let mut c = coo.clone();
        Self::from_coo_inplace(&mut c, block_bits)
    }

    /// Convert from COO, Morton-sorting the input in place.
    pub fn from_coo_inplace(coo: &mut CooTensor<S>, block_bits: u8) -> Result<Self> {
        check_block_bits(block_bits)?;
        let _span = tenbench_obs::span!("convert.hicoo");
        {
            let _sort = tenbench_obs::span!("convert.sort");
            coo.sort_morton(block_bits);
        }
        let _build = tenbench_obs::span!("convert.build");
        let m = coo.nnz();
        let emask = (1u32 << block_bits) - 1;
        let inds = coo.inds();

        // Block boundaries: a nonzero starts a new block iff any mode's block
        // coordinate differs from its predecessor's. Chunks scan disjoint
        // ranges (each looks back one element at most, safely inside the
        // sorted arrays) and their boundary lists concatenate in order.
        let mut bptr: Vec<u64> = if m == 0 {
            Vec::new()
        } else {
            let threads = rayon::current_num_threads().max(1);
            let nchunks = threads.min(m.div_ceil(4096)).max(1);
            let bounds: Vec<usize> = (0..=nchunks).map(|c| c * m / nchunks).collect();
            let per_chunk: Vec<Vec<u64>> = (0..nchunks)
                .into_par_iter()
                .with_min_len(1)
                .map(|c| {
                    let mut v = Vec::new();
                    for i in bounds[c]..bounds[c + 1] {
                        let boundary = i == 0
                            || inds
                                .iter()
                                .any(|arr| arr[i] >> block_bits != arr[i - 1] >> block_bits);
                        if boundary {
                            v.push(i as u64);
                        }
                    }
                    v
                })
                .collect();
            per_chunk.concat()
        };
        bptr.push(m as u64);

        let nb = bptr.len() - 1;
        let bptr_ref = &bptr;
        let binds: Vec<Vec<u32>> = inds
            .iter()
            .map(|arr| {
                (0..nb)
                    .into_par_iter()
                    .with_min_len(256)
                    .map(|b| arr[bptr_ref[b] as usize] >> block_bits)
                    .collect()
            })
            .collect();
        let einds: Vec<Vec<u8>> = inds
            .iter()
            .map(|arr| {
                arr.par_iter()
                    .with_min_len(4096)
                    .map(|&x| (x & emask) as u8)
                    .collect()
            })
            .collect();
        let vals: Vec<S> = coo.vals().to_vec();
        tenbench_obs::counters::CONVERT_BLOCKS.add(nb as u64);

        Ok(HicooTensor {
            shape: coo.shape().clone(),
            block_bits,
            bptr,
            binds,
            einds,
            vals,
        })
    }

    /// Internal constructor for kernel outputs whose structure is correct by
    /// construction (e.g. the HiCOO output of Ttv).
    pub(crate) fn from_parts_unchecked(
        shape: Shape,
        block_bits: u8,
        bptr: Vec<u64>,
        binds: Vec<Vec<u32>>,
        einds: Vec<Vec<u8>>,
        vals: Vec<S>,
    ) -> Self {
        let t = HicooTensor {
            shape,
            block_bits,
            bptr,
            binds,
            einds,
            vals,
        };
        debug_assert!(t.validate().is_ok());
        t
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Number of stored nonzeros (`M`).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of nonempty blocks (`n_b`).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.bptr.len().saturating_sub(1)
    }

    /// log2 of the block edge length.
    #[inline]
    pub fn block_bits(&self) -> u8 {
        self.block_bits
    }

    /// Block edge length `B`.
    #[inline]
    pub fn block_size(&self) -> u32 {
        1 << self.block_bits
    }

    /// Mean nonzeros per block (the HiCOO paper's alpha_b; hyper-sparse
    /// tensors have alpha_b near 1, which is where gHiCOO helps).
    pub fn mean_nnz_per_block(&self) -> f64 {
        if self.num_blocks() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.num_blocks() as f64
        }
    }

    /// Nonzeros of the longest block — the GPU Mttkrp load-imbalance
    /// indicator (paper §3.4.2).
    pub fn max_nnz_per_block(&self) -> usize {
        (0..self.num_blocks())
            .map(|b| (self.bptr[b + 1] - self.bptr[b]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Half-open nonzero range of block `b`.
    #[inline]
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        self.bptr[b] as usize..self.bptr[b + 1] as usize
    }

    /// Block coordinate of block `b` in `mode`.
    #[inline]
    pub fn block_ind(&self, b: usize, mode: usize) -> u32 {
        self.binds[mode][b]
    }

    /// The per-mode block coordinate arrays.
    #[inline]
    pub fn binds(&self) -> &[Vec<u32>] {
        &self.binds
    }

    /// The per-mode element (within-block) offset arrays.
    #[inline]
    pub fn einds(&self) -> &[Vec<u8>] {
        &self.einds
    }

    /// The block pointer array.
    #[inline]
    pub fn bptr(&self) -> &[u64] {
        &self.bptr
    }

    /// The values.
    #[inline]
    pub fn vals(&self) -> &[S] {
        &self.vals
    }

    /// The values, mutably (structure is immutable through this).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [S] {
        &mut self.vals
    }

    /// Reconstruct the full coordinate of nonzero `x` inside block `b`.
    #[inline]
    pub fn coord_of(&self, b: usize, x: usize, buf: &mut [u32]) {
        for mode in 0..self.order() {
            buf[mode] = (self.binds[mode][b] << self.block_bits) | self.einds[mode][x] as u32;
        }
    }

    /// Expand to COO (Morton storage order preserved).
    pub fn to_coo(&self) -> CooTensor<S> {
        let order = self.order();
        let m = self.nnz();
        let mut inds: Vec<Vec<u32>> = vec![Vec::with_capacity(m); order];
        for b in 0..self.num_blocks() {
            for x in self.block_range(b) {
                for (mode, arr) in inds.iter_mut().enumerate() {
                    arr.push((self.binds[mode][b] << self.block_bits) | self.einds[mode][x] as u32);
                }
            }
        }
        CooTensor::from_parts_unchecked(
            self.shape.clone(),
            inds,
            self.vals.clone(),
            SortState::Morton {
                block_bits: self.block_bits,
            },
        )
    }

    /// Coordinate → value map (test helper).
    pub fn to_map(&self) -> BTreeMap<Vec<u32>, f64> {
        self.to_coo().to_map()
    }

    /// `true` if two HiCOO tensors share block structure and element pattern
    /// (the same-pattern Tew fast-path requirement).
    pub fn same_pattern(&self, other: &HicooTensor<S>) -> bool {
        self.shape == other.shape
            && self.block_bits == other.block_bits
            && self.bptr == other.bptr
            && self.binds == other.binds
            && self.einds == other.einds
    }

    /// Storage bytes: `u64` block pointers, `u32` block indices per mode,
    /// `u8` element indices per mode, plus values. This is the quantity the
    /// paper's HiCOO column of Table 1 builds on (`20 n_b + 7M` for order 3
    /// ignoring the `+8` sentinel).
    pub fn storage_bytes(&self) -> u64 {
        let n = self.order() as u64;
        let nb = self.num_blocks() as u64;
        let m = self.nnz() as u64;
        8 * (nb + 1) + 4 * n * nb + n * m + m * S::BYTES
    }

    /// Check structural invariants: block bits in range, monotone `bptr`,
    /// nonempty blocks, per-mode array lengths, element indices below the
    /// block edge, blocks in Morton order without adjacent duplicates, and
    /// reconstructed coordinates in bounds. Cheap enough to run after any
    /// conversion or untrusted load.
    pub fn validate(&self) -> Result<()> {
        check_block_bits(self.block_bits)?;
        let nb = self.num_blocks();
        if self.bptr.first() != Some(&0) || *self.bptr.last().unwrap_or(&0) != self.nnz() as u64 {
            return Err(TensorError::InvalidStructure(
                "bptr must start at 0 and end at nnz".into(),
            ));
        }
        for b in 0..nb {
            if self.bptr[b] >= self.bptr[b + 1] {
                return Err(TensorError::InvalidStructure(format!(
                    "block {b} is empty or bptr not strictly increasing"
                )));
            }
        }
        if self.binds.len() != self.order() || self.einds.len() != self.order() {
            return Err(TensorError::InvalidStructure(format!(
                "{} binds / {} einds arrays for order-{} tensor",
                self.binds.len(),
                self.einds.len(),
                self.order()
            )));
        }
        for (mode, arr) in self.binds.iter().enumerate() {
            if arr.len() != nb {
                return Err(TensorError::InvalidStructure(format!(
                    "mode-{mode} binds length {} != block count {nb}",
                    arr.len()
                )));
            }
        }
        let edge = self.block_size();
        for (mode, arr) in self.einds.iter().enumerate() {
            if arr.len() != self.nnz() {
                return Err(TensorError::InvalidStructure(format!(
                    "mode-{mode} einds length {} != nnz {}",
                    arr.len(),
                    self.nnz()
                )));
            }
            if let Some(&bad) = arr.iter().find(|&&e| (e as u32) >= edge) {
                return Err(TensorError::InvalidStructure(format!(
                    "mode-{mode} element index {bad} outside block edge {edge}"
                )));
            }
        }
        // Blocks must be strictly sorted — Morton order from COO conversion,
        // or lexicographic order from kernels that rebuild block lists (Ttv's
        // scheduled variant sorts surviving block coords lexicographically).
        // Either way adjacent duplicates mean a failed construction merge.
        let mut morton_ok = true;
        let mut lex_ok = true;
        let mut prev = vec![0u32; self.order()];
        let mut curr = vec![0u32; self.order()];
        for b in 1..nb {
            for (mode, arr) in self.binds.iter().enumerate() {
                prev[mode] = arr[b - 1];
                curr[mode] = arr[b];
            }
            if prev == curr {
                return Err(TensorError::InvalidStructure(format!(
                    "blocks {} and {b} share a block coordinate",
                    b - 1
                )));
            }
            if morton::morton_cmp(&prev, &curr) == std::cmp::Ordering::Greater {
                morton_ok = false;
            }
            if prev > curr {
                lex_ok = false;
            }
            if !morton_ok && !lex_ok {
                return Err(TensorError::InvalidStructure(format!(
                    "blocks up to {b} are in neither Morton nor lexicographic order"
                )));
            }
        }
        let mut buf = vec![0u32; self.order()];
        for b in 0..nb {
            for x in self.block_range(b) {
                self.coord_of(b, x, &mut buf);
                self.shape.check_coord(&buf)?;
            }
        }
        Ok(())
    }

    /// Count NaN/Inf values (see [`CooTensor::nonfinite_count`]).
    pub fn nonfinite_count(&self) -> usize {
        self.vals.iter().filter(|v| !v.is_finite()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2(a) example: 8 nonzeros of a 4x4x4 tensor in
    /// 2x2x2 blocks.
    fn fig2_tensor() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4, 4]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 1], 2.0),
                (vec![0, 1, 0], 3.0),
                (vec![1, 0, 0], 4.0),
                (vec![1, 1, 2], 5.0),
                (vec![2, 2, 0], 6.0),
                (vec![2, 2, 2], 7.0),
                (vec![3, 3, 3], 8.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_entries() {
        let coo = fig2_tensor();
        let h = HicooTensor::from_coo(&coo, 1).unwrap();
        assert_eq!(h.nnz(), 8);
        assert_eq!(h.to_map(), coo.to_map());
        assert!(h.validate().is_ok());
    }

    #[test]
    fn blocks_partition_the_nonzeros() {
        let h = HicooTensor::from_coo(&fig2_tensor(), 1).unwrap();
        // Blocks: (0,0,0) holds 4 nnz, (0,0,1) holds 1, (1,1,0) holds 1,
        // (1,1,1) holds 2.
        assert_eq!(h.num_blocks(), 4);
        let sizes: Vec<usize> = (0..h.num_blocks())
            .map(|b| h.block_range(b).len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert_eq!(h.max_nnz_per_block(), 4);
        assert_eq!(h.mean_nnz_per_block(), 2.0);
    }

    #[test]
    fn element_indices_fit_block() {
        let h = HicooTensor::from_coo(&fig2_tensor(), 1).unwrap();
        for arr in h.einds() {
            assert!(arr.iter().all(|&e| e < 2));
        }
    }

    #[test]
    fn rejects_block_bits_out_of_range() {
        let coo = fig2_tensor();
        assert!(matches!(
            HicooTensor::from_coo(&coo, 0),
            Err(TensorError::InvalidBlockBits(0))
        ));
        assert!(matches!(
            HicooTensor::from_coo(&coo, 9),
            Err(TensorError::InvalidBlockBits(9))
        ));
        assert!(HicooTensor::from_coo(&coo, 8).is_ok());
    }

    #[test]
    fn hicoo_compresses_blocked_tensors() {
        // A tensor whose nonzeros cluster in one block compresses well: a
        // 256^3 tensor with 512 nonzeros in the first 128^3 corner.
        let entries: Vec<(Vec<u32>, f32)> = (0..512)
            .map(|i| (vec![i % 8, (i / 8) % 8, i / 64], 1.0))
            .collect();
        let coo = CooTensor::from_entries(Shape::new(vec![256, 256, 256]), entries).unwrap();
        let h = HicooTensor::from_coo(&coo, 7).unwrap();
        assert_eq!(h.num_blocks(), 1);
        assert!(h.storage_bytes() < coo.storage_bytes());
    }

    #[test]
    fn coord_reconstruction_matches_source() {
        let coo = fig2_tensor();
        let h = HicooTensor::from_coo(&coo, 1).unwrap();
        let expanded = h.to_coo();
        assert!(expanded.validate().is_ok());
        assert_eq!(expanded.to_map(), coo.to_map());
        assert!(expanded.sort_state().is_morton(1));
    }

    #[test]
    fn same_pattern_ignores_values() {
        let coo = fig2_tensor();
        let a = HicooTensor::from_coo(&coo, 1).unwrap();
        let mut b = a.clone();
        b.vals_mut()[3] = -1.0;
        assert!(a.same_pattern(&b));
        let c = HicooTensor::from_coo(&coo, 2).unwrap();
        assert!(!a.same_pattern(&c));
    }

    #[test]
    fn validate_detects_corrupted_structure() {
        let good = HicooTensor::from_coo(&fig2_tensor(), 1).unwrap();

        // Element index at or above the block edge.
        let mut t = good.clone();
        t.einds[0][0] = t.block_size() as u8;
        assert!(matches!(
            t.validate(),
            Err(TensorError::InvalidStructure(_))
        ));

        // Duplicated adjacent block coordinate.
        let mut t = good.clone();
        for arr in &mut t.binds {
            let first = arr[0];
            arr[1] = first;
        }
        assert!(matches!(
            t.validate(),
            Err(TensorError::InvalidStructure(_))
        ));

        // Blocks in neither Morton nor lexicographic order.
        let mut t = good.clone();
        for arr in &mut t.binds {
            arr.swap(0, t.bptr.len() - 2);
        }
        assert!(matches!(
            t.validate(),
            Err(TensorError::InvalidStructure(_))
        ));

        // einds array length out of sync with nnz.
        let mut t = good.clone();
        t.einds[1].pop();
        assert!(matches!(
            t.validate(),
            Err(TensorError::InvalidStructure(_))
        ));
    }

    #[test]
    fn nonfinite_count_flags_poisoned_values() {
        let mut h = HicooTensor::from_coo(&fig2_tensor(), 1).unwrap();
        assert_eq!(h.nonfinite_count(), 0);
        h.vals_mut()[2] = f32::NAN;
        h.vals_mut()[5] = f32::INFINITY;
        assert_eq!(h.nonfinite_count(), 2);
    }

    #[test]
    fn empty_tensor_converts() {
        let coo = CooTensor::<f32>::empty(Shape::new(vec![8, 8]));
        let h = HicooTensor::from_coo(&coo, 2).unwrap();
        assert_eq!(h.num_blocks(), 0);
        assert_eq!(h.nnz(), 0);
        assert!(h.validate().is_ok());
    }
}
