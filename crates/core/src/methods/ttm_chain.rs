//! TTM-chain — the Tucker decomposition's core computation
//! `G = X ×_1 U_1^T ×_2 U_2^T …`, listed by the paper (§7) as a future
//! suite operation and provided here as an extension.

use crate::coo::{CooTensor, MultiSemiSparseTensor};
use crate::dense::DenseMatrix;
use crate::error::Result;
use crate::scalar::Scalar;

/// Apply a chain of mode products `X ×_{n_1} U_1 ×_{n_2} U_2 …` in the given
/// order. Each product densifies its mode (the sparse-dense property);
/// intermediates stay in the multi-dense-mode semi-sparse representation
/// ([`MultiSemiSparseTensor`]) so the chain never re-expands to COO until
/// the final result — the layout a Tucker decomposition's core computation
/// needs. The returned COO holds every stored stripe value (the dense core
/// when every mode was contracted).
pub fn ttm_chain<S: Scalar>(
    x: &CooTensor<S>,
    chain: &[(usize, &DenseMatrix<S>)],
) -> Result<CooTensor<S>> {
    let mut cur = MultiSemiSparseTensor::from_coo(x);
    for &(mode, u) in chain {
        cur = cur.ttm(u, mode)?;
    }
    Ok(cur.to_coo())
}

/// Resumable TTM-chain state: the stage index and the COO intermediate
/// after the last completed mode product.
///
/// The staged variant round-trips each intermediate through COO so it can
/// be checkpointed between stages; a run resumed from a checkpointed stage
/// is bitwise-identical to an uninterrupted *staged* run (both fold the
/// same COO intermediates), though intermediates may be ordered differently
/// from the single-pass [`ttm_chain`].
#[derive(Debug, Clone)]
pub struct TtmChainState<S: Scalar> {
    /// Number of completed mode products.
    pub stage: usize,
    /// The intermediate tensor after `stage` products (the input at stage 0).
    pub current: CooTensor<S>,
}

/// Start a staged chain at stage 0.
pub fn ttm_chain_init<S: Scalar>(x: &CooTensor<S>) -> TtmChainState<S> {
    TtmChainState {
        stage: 0,
        current: x.clone(),
    }
}

/// Apply the next mode product in `chain`, advancing `state` in place.
/// Returns `Ok(true)` when every stage has been applied.
pub fn ttm_chain_step<S: Scalar>(
    chain: &[(usize, &DenseMatrix<S>)],
    state: &mut TtmChainState<S>,
) -> Result<bool> {
    if state.stage >= chain.len() {
        return Ok(true);
    }
    let (mode, u) = chain[state.stage];
    state.current = MultiSemiSparseTensor::from_coo(&state.current)
        .ttm(u, mode)?
        .to_coo();
    state.stage += 1;
    Ok(state.stage >= chain.len())
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use crate::shape::Shape;

    use super::*;

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![1, 2, 3], 2.0),
                (vec![2, 1, 4], -1.0),
                (vec![0, 3, 2], 0.5),
            ],
        )
        .unwrap()
    }

    /// Dense reference for a full chain.
    fn reference(
        x: &CooTensor<f64>,
        chain: &[(usize, &DenseMatrix<f64>)],
    ) -> BTreeMap<Vec<u32>, f64> {
        let mut cur: BTreeMap<Vec<u32>, f64> = x.to_map();
        for &(mode, u) in chain {
            let mut next: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
            for (c, v) in &cur {
                for r in 0..u.cols() {
                    let mut key = c.clone();
                    key[mode] = r as u32;
                    *next.entry(key).or_insert(0.0) += v * u[(c[mode] as usize, r)];
                }
            }
            cur = next;
        }
        cur.retain(|_, v| v.abs() > 1e-12);
        cur
    }

    #[test]
    fn two_step_chain_matches_reference() {
        let x = sample();
        let u1 = DenseMatrix::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        let u2 = DenseMatrix::from_fn(5, 2, |i, j| (2 * i + j) as f64 * 0.5);
        let chain: Vec<(usize, &DenseMatrix<f64>)> = vec![(0, &u1), (2, &u2)];
        let got = ttm_chain(&x, &chain).unwrap();
        let mut got_map = got.to_map();
        got_map.retain(|_, v| v.abs() > 1e-12);
        let expect = reference(&x, &chain);
        assert_eq!(got_map.len(), expect.len());
        for (k, v) in &expect {
            assert!((got_map[k] - v).abs() < 1e-9, "{k:?}");
        }
    }

    #[test]
    fn full_tucker_core_shape() {
        let x = sample();
        let u0 = DenseMatrix::constant(3, 2, 1.0);
        let u1 = DenseMatrix::constant(4, 2, 1.0);
        let u2 = DenseMatrix::constant(5, 2, 1.0);
        let chain: Vec<(usize, &DenseMatrix<f64>)> = vec![(0, &u0), (1, &u1), (2, &u2)];
        let core = ttm_chain(&x, &chain).unwrap();
        assert_eq!(core.shape().dims(), &[2, 2, 2]);
        // With all-ones factors every core entry equals the sum of values.
        let total: f64 = x.vals().iter().sum();
        for (_, v) in core.to_map() {
            assert!((v - total).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_chain_is_identity() {
        let x = sample();
        let got = ttm_chain(&x, &[]).unwrap();
        assert_eq!(got.to_map(), x.to_map());
    }
}
