//! CP-ALS — CANDECOMP/PARAFAC decomposition by alternating least squares,
//! the method whose bottleneck is Mttkrp (paper §2.5).

use crate::coo::CooTensor;
use crate::csf::{mttkrp_csf, CsfTensor};
use crate::dense::DenseMatrix;
use crate::error::Result;
use crate::hicoo::HicooTensor;
use crate::kernels::mttkrp::{mttkrp_hicoo, mttkrp_with, MttkrpStrategy};
use crate::scalar::Scalar;

use super::XorShift64;

/// Which Mttkrp implementation drives the ALS sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CpAlsBackend {
    /// COO Mttkrp with [`CpAlsOptions::strategy`] (the suite's reference).
    #[default]
    Coo,
    /// HiCOO Mttkrp; one mode-generic representation serves all modes
    /// ("only one tensor representation is needed for all tensor
    /// computations, even in different modes", §3).
    Hicoo {
        /// log2 of the HiCOO block edge.
        block_bits: u8,
    },
    /// CSF Mttkrp; one tree per mode (CSF is mode-specific), SPLATT-style.
    Csf,
}

/// Options for [`cp_als`].
#[derive(Debug, Clone)]
pub struct CpAlsOptions {
    /// Decomposition rank `R` (the paper's experiments use 16).
    pub rank: usize,
    /// Maximum ALS sweeps.
    pub max_iters: usize,
    /// Stop when the fit improves by less than this between sweeps.
    pub tol: f64,
    /// Seed for the factor initialization.
    pub seed: u64,
    /// Mttkrp strategy to use inside the sweeps (COO backend).
    pub strategy: MttkrpStrategy,
    /// Format backend for the Mttkrp sweeps.
    pub backend: CpAlsBackend,
}

impl Default for CpAlsOptions {
    fn default() -> Self {
        CpAlsOptions {
            rank: 16,
            max_iters: 50,
            tol: 1e-5,
            seed: 0x5EED,
            strategy: MttkrpStrategy::Atomic,
            backend: CpAlsBackend::Coo,
        }
    }
}

/// Pre-built per-format tensor representations shared by all sweeps.
enum Backend<S: Scalar> {
    Coo(MttkrpStrategy),
    Hicoo(HicooTensor<S>),
    Csf(Vec<CsfTensor<S>>),
}

impl<S: Scalar> Backend<S> {
    fn build(x: &CooTensor<S>, b: CpAlsBackend, strategy: MttkrpStrategy) -> Result<Self> {
        Ok(match b {
            CpAlsBackend::Coo => Backend::Coo(strategy),
            CpAlsBackend::Hicoo { block_bits } => {
                Backend::Hicoo(HicooTensor::from_coo(x, block_bits)?)
            }
            CpAlsBackend::Csf => {
                let order = x.order();
                let trees = (0..order)
                    .map(|mode| {
                        let mut mo: Vec<usize> = (0..order).filter(|&m| m != mode).collect();
                        mo.insert(0, mode);
                        CsfTensor::from_coo(x, Some(mo))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Backend::Csf(trees)
            }
        })
    }

    fn mttkrp(
        &self,
        x: &CooTensor<S>,
        factors: &[&DenseMatrix<S>],
        mode: usize,
    ) -> Result<DenseMatrix<S>> {
        match self {
            Backend::Coo(s) => mttkrp_with(x, factors, mode, *s),
            Backend::Hicoo(h) => mttkrp_hicoo(h, factors, mode),
            Backend::Csf(trees) => mttkrp_csf(&trees[mode], factors, mode),
        }
    }
}

/// The result of a CP decomposition: `X ≈ Σ_r λ_r a_r ∘ b_r ∘ c_r ∘ …`.
#[derive(Debug, Clone)]
pub struct CpDecomposition<S: Scalar> {
    /// One column-normalized factor matrix per mode (`I_n x R`).
    pub factors: Vec<DenseMatrix<S>>,
    /// Component weights.
    pub lambda: Vec<S>,
    /// Final fit in `[0 (worst), 1 (exact)]`: `1 - ‖X - model‖ / ‖X‖`.
    pub fit: f64,
    /// Number of ALS sweeps performed.
    pub iterations: usize,
}

impl<S: Scalar> CpDecomposition<S> {
    /// Evaluate the model at one coordinate.
    pub fn predict(&self, coord: &[u32]) -> S {
        let r = self.lambda.len();
        let mut acc = S::ZERO;
        for k in 0..r {
            let mut term = self.lambda[k];
            for (m, f) in self.factors.iter().enumerate() {
                term *= f[(coord[m] as usize, k)];
            }
            acc += term;
        }
        acc
    }
}

/// Run CP-ALS on a sparse tensor.
///
/// # Examples
/// ```
/// use tenbench_core::prelude::*;
/// use tenbench_core::methods::{cp_als, CpAlsOptions};
///
/// // A rank-1 tensor: X[i,j] = (i+1) * (j+1).
/// let entries = (0..3u32).flat_map(|i| (0..4u32).map(move |j| {
///     (vec![i, j], ((i + 1) * (j + 1)) as f64)
/// })).collect();
/// let x = CooTensor::<f64>::from_entries(Shape::new(vec![3, 4]), entries)?;
/// let d = cp_als(&x, &CpAlsOptions { rank: 1, max_iters: 30, ..Default::default() })?;
/// assert!(d.fit > 0.999);
/// # Ok::<(), TensorError>(())
/// ```
///
/// Each sweep solves, for every mode `n`,
/// `A_n <- Mttkrp(X, n) * (Hadamard of other grams)^-1`,
/// then normalizes `A_n`'s columns into `lambda`. The fit is computed from
/// `‖X‖^2 + ‖model‖^2 - 2 <X, model>` where the inner product reuses the
/// last Mttkrp result.
pub fn cp_als<S: Scalar>(x: &CooTensor<S>, opts: &CpAlsOptions) -> Result<CpDecomposition<S>> {
    let backend = Backend::build(x, opts.backend, opts.strategy)?;
    let mut state = cp_als_init(x, opts);
    while state.iteration < opts.max_iters {
        if step_with_backend(x, &backend, opts, &mut state)? {
            break;
        }
    }
    Ok(CpDecomposition {
        factors: state.factors,
        lambda: state.lambda,
        fit: state.fit,
        iterations: state.iteration,
    })
}

/// Resumable CP-ALS state: everything one sweep carries to the next that is
/// not derivable from the tensor and the options.
///
/// Grams and `‖X‖²` are *not* stored: they are pure functions of the factors
/// and the tensor, recomputed at the start of every [`cp_als_step`], so a
/// state rebuilt from a checkpoint continues bitwise-identically to an
/// uninterrupted run.
#[derive(Debug, Clone)]
pub struct CpAlsState<S: Scalar> {
    /// One factor matrix per mode (`I_n x R`); column-normalized once at
    /// least one sweep has completed.
    pub factors: Vec<DenseMatrix<S>>,
    /// Component weights.
    pub lambda: Vec<S>,
    /// Fit after the last completed sweep (`0.0` before the first).
    pub fit: f64,
    /// Number of completed ALS sweeps.
    pub iteration: usize,
}

/// Seed the factor matrices for a fresh CP-ALS run (iteration 0).
///
/// Deterministic in `opts.seed`: the same seed always produces bitwise-equal
/// initial factors.
pub fn cp_als_init<S: Scalar>(x: &CooTensor<S>, opts: &CpAlsOptions) -> CpAlsState<S> {
    let mut rng = XorShift64::new(opts.seed);
    let factors: Vec<DenseMatrix<S>> = (0..x.order())
        .map(|m| {
            DenseMatrix::from_fn(x.shape().dim(m) as usize, opts.rank, |_, _| {
                S::from_f64(rng.next_f64())
            })
        })
        .collect();
    CpAlsState {
        factors,
        lambda: vec![S::ONE; opts.rank],
        fit: 0.0,
        iteration: 0,
    }
}

/// Run exactly one ALS sweep, advancing `state` in place.
///
/// Returns `Ok(true)` when the run has converged (fit delta below
/// `opts.tol`, never on the first sweep — matching [`cp_als`]'s loop).
/// Rebuilds the format backend on every call; long-running callers that
/// step a `Coo` backend (the job subsystem) pay nothing for this, while
/// [`cp_als`] itself reuses a prebuilt backend across sweeps.
pub fn cp_als_step<S: Scalar>(
    x: &CooTensor<S>,
    opts: &CpAlsOptions,
    state: &mut CpAlsState<S>,
) -> Result<bool> {
    let backend = Backend::build(x, opts.backend, opts.strategy)?;
    step_with_backend(x, &backend, opts, state)
}

fn step_with_backend<S: Scalar>(
    x: &CooTensor<S>,
    backend: &Backend<S>,
    opts: &CpAlsOptions,
    state: &mut CpAlsState<S>,
) -> Result<bool> {
    let order = x.order();
    let r = opts.rank;
    // Derived quantities: bitwise-reproducible from (x, factors) alone, so
    // checkpoints never need to carry them.
    let mut grams: Vec<DenseMatrix<S>> = state.factors.iter().map(|f| f.gram()).collect();
    let norm_x_sq: f64 = x.vals().iter().map(|&v| v.to_f64() * v.to_f64()).sum();

    let mut last_m: Option<DenseMatrix<S>> = None;
    for n in 0..order {
        let frefs: Vec<&DenseMatrix<S>> = state.factors.iter().collect();
        let mkr = backend.mttkrp(x, &frefs, n)?;
        // V = Hadamard product of the other modes' grams.
        let mut v = DenseMatrix::constant(r, r, S::ONE);
        for (m, g) in grams.iter().enumerate() {
            if m != n {
                v = v.hadamard(g);
            }
        }
        let mut a_n = v.solve_spd_rhs(&mkr);
        let norms = a_n.normalize_columns();
        for (l, nz) in state.lambda.iter_mut().zip(&norms) {
            *l = if *nz == S::ZERO { S::ZERO } else { *nz };
        }
        grams[n] = a_n.gram();
        state.factors[n] = a_n;
        if n == order - 1 {
            last_m = Some(mkr);
        }
    }

    // Fit via the last mode's Mttkrp:
    // <X, model> = sum_{i,k} M[i,k] * A_last[i,k] * lambda[k].
    let last_m = last_m.expect("order >= 1");
    let a_last = &state.factors[order - 1];
    let mut inner = 0.0f64;
    for i in 0..a_last.rows() {
        let mr = last_m.row(i);
        let ar = a_last.row(i);
        for k in 0..r {
            inner += mr[k].to_f64() * ar[k].to_f64() * state.lambda[k].to_f64();
        }
    }
    // ||model||^2 = sum_{k,l} lambda_k lambda_l prod_n gram_n[k,l].
    let mut model_sq = 0.0f64;
    for a in 0..r {
        for b in 0..r {
            let mut prod = state.lambda[a].to_f64() * state.lambda[b].to_f64();
            for g in &grams {
                prod *= g[(a, b)].to_f64();
            }
            model_sq += prod;
        }
    }
    let resid_sq = (norm_x_sq + model_sq - 2.0 * inner).max(0.0);
    let new_fit = if norm_x_sq > 0.0 {
        1.0 - (resid_sq / norm_x_sq).sqrt()
    } else {
        1.0
    };
    let delta = (new_fit - state.fit).abs();
    state.fit = new_fit;
    state.iteration += 1;
    Ok(state.iteration > 1 && delta < opts.tol)
}

#[cfg(test)]
mod tests {
    use crate::shape::Shape;

    use super::*;

    /// Build an exactly rank-1 tensor: x_ijk = a_i b_j c_k over a dense-ish
    /// pattern.
    fn rank_one_tensor() -> CooTensor<f64> {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, 1.5, 2.5, 3.5];
        let c = [2.0, 4.0];
        let mut entries = Vec::new();
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                for (k, &ck) in c.iter().enumerate() {
                    entries.push((vec![i as u32, j as u32, k as u32], ai * bj * ck));
                }
            }
        }
        CooTensor::from_entries(Shape::new(vec![3, 4, 2]), entries).unwrap()
    }

    #[test]
    fn recovers_rank_one_tensor() {
        let x = rank_one_tensor();
        let opts = CpAlsOptions {
            rank: 1,
            max_iters: 60,
            tol: 1e-10,
            ..Default::default()
        };
        let d = cp_als(&x, &opts).unwrap();
        assert!(d.fit > 0.999, "fit = {}", d.fit);
        // Predicted values match.
        for (c, v) in x.iter_entries() {
            let p = d.predict(&c);
            assert!((p - v).abs() < 1e-5 * v.abs().max(1.0), "{p} vs {v}");
        }
    }

    #[test]
    fn higher_rank_does_not_hurt_fit() {
        let x = rank_one_tensor();
        let d1 = cp_als(
            &x,
            &CpAlsOptions {
                rank: 1,
                max_iters: 40,
                ..Default::default()
            },
        )
        .unwrap();
        let d3 = cp_als(
            &x,
            &CpAlsOptions {
                rank: 3,
                max_iters: 40,
                ..Default::default()
            },
        )
        .unwrap();
        // Extra (redundant) components make the solves ill-conditioned, so
        // allow a small fit regression; both should be essentially exact.
        assert!(d3.fit >= d1.fit - 1e-4, "d1 {} d3 {}", d1.fit, d3.fit);
        assert!(d3.fit > 0.999);
    }

    #[test]
    fn factors_are_column_normalized() {
        let x = rank_one_tensor();
        let d = cp_als(
            &x,
            &CpAlsOptions {
                rank: 2,
                max_iters: 10,
                ..Default::default()
            },
        )
        .unwrap();
        for f in &d.factors {
            for k in 0..2 {
                let norm: f64 = (0..f.rows()).map(|i| f[(i, k)] * f[(i, k)]).sum();
                assert!((norm - 1.0).abs() < 1e-6 || norm < 1e-12);
            }
        }
    }

    #[test]
    fn all_backends_reach_the_same_fit() {
        let x = rank_one_tensor();
        let mk = |backend| CpAlsOptions {
            rank: 1,
            max_iters: 25,
            backend,
            ..Default::default()
        };
        let coo = cp_als(&x, &mk(CpAlsBackend::Coo)).unwrap();
        let hic = cp_als(&x, &mk(CpAlsBackend::Hicoo { block_bits: 3 })).unwrap();
        let csf = cp_als(&x, &mk(CpAlsBackend::Csf)).unwrap();
        assert!(coo.fit > 0.999);
        assert!(
            (coo.fit - hic.fit).abs() < 1e-6,
            "{} vs {}",
            coo.fit,
            hic.fit
        );
        assert!(
            (coo.fit - csf.fit).abs() < 1e-6,
            "{} vs {}",
            coo.fit,
            csf.fit
        );
    }

    #[test]
    fn stepwise_run_matches_wrapper_bitwise() {
        let x = rank_one_tensor();
        let opts = CpAlsOptions {
            rank: 2,
            max_iters: 8,
            tol: 0.0,
            ..Default::default()
        };
        let d = cp_als(&x, &opts).unwrap();
        let mut st = cp_als_init(&x, &opts);
        while st.iteration < opts.max_iters {
            if cp_als_step(&x, &opts, &mut st).unwrap() {
                break;
            }
        }
        assert_eq!(st.iteration, d.iterations);
        assert_eq!(st.fit.to_bits(), d.fit.to_bits());
        for (a, b) in st.factors.iter().zip(&d.factors) {
            let ab: Vec<u64> = a.data().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = b.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
        for (a, b) in st.lambda.iter().zip(&d.lambda) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn cloned_state_resumes_bitwise_identically() {
        let x = rank_one_tensor();
        let opts = CpAlsOptions {
            rank: 2,
            max_iters: 6,
            tol: 0.0,
            ..Default::default()
        };
        let mut a = cp_als_init(&x, &opts);
        for _ in 0..3 {
            cp_als_step(&x, &opts, &mut a).unwrap();
        }
        // "Checkpoint" by cloning mid-run, then continue both runs.
        let mut b = a.clone();
        for _ in 0..3 {
            cp_als_step(&x, &opts, &mut a).unwrap();
            cp_als_step(&x, &opts, &mut b).unwrap();
        }
        assert_eq!(a.fit.to_bits(), b.fit.to_bits());
        for (fa, fb) in a.factors.iter().zip(&b.factors) {
            let ab: Vec<u64> = fa.data().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = fb.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
    }

    #[test]
    fn strategy_choice_gives_same_fit() {
        let x = rank_one_tensor();
        let mk = |strategy| CpAlsOptions {
            rank: 2,
            max_iters: 15,
            strategy,
            ..Default::default()
        };
        let a = cp_als(&x, &mk(MttkrpStrategy::Seq)).unwrap();
        let b = cp_als(&x, &mk(MttkrpStrategy::Privatized)).unwrap();
        assert!((a.fit - b.fit).abs() < 1e-6);
    }
}
