//! Complete tensor methods built on top of the benchmark kernels.
//!
//! The paper motivates its kernels through these methods (§2): Mttkrp is
//! the bottleneck of CANDECOMP/PARAFAC decomposition, Ttv of the tensor
//! power method, and Ttm of the Tucker decomposition's TTM-chain. The paper
//! lists "more complete tensor methods, such as CANDECOMP/PARAFAC and
//! Tucker" as future work for the suite; this module provides them as
//! extensions so the examples can exercise the kernels in their natural
//! applications.

mod cp_als;
mod power_method;
mod ttm_chain;

pub use cp_als::{
    cp_als, cp_als_init, cp_als_step, CpAlsBackend, CpAlsOptions, CpAlsState, CpDecomposition,
};
pub use power_method::{
    power_method_init, power_method_step, tensor_power_method, PowerMethodResult, PowerMethodState,
};
pub use ttm_chain::{ttm_chain, ttm_chain_init, ttm_chain_step, TtmChainState};

/// A small deterministic xorshift64* generator used to initialize factor
/// matrices without pulling a random-number dependency into the core crate.
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_in_range() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn xorshift_zero_seed_is_valid() {
        let mut g = XorShift64::new(0);
        assert!(g.next_f64() >= 0.0);
    }
}
