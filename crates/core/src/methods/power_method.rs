//! Tensor power method — orthogonal decomposition of (near-)symmetric
//! tensors whose bottleneck is Ttv (paper §2.3).

use crate::coo::CooTensor;
use crate::dense::DenseVector;
use crate::error::{Result, TensorError};
use crate::kernels::ttv::ttv;
use crate::scalar::Scalar;

use super::XorShift64;

/// Result of one run of the tensor power method.
#[derive(Debug, Clone)]
pub struct PowerMethodResult<S: Scalar> {
    /// Estimated eigenvalue `λ = X(v, v, …, v)`.
    pub eigenvalue: S,
    /// Estimated unit eigenvector.
    pub eigenvector: DenseVector<S>,
    /// Iterations performed.
    pub iterations: usize,
    /// `true` if the eigenvalue change fell below the tolerance.
    pub converged: bool,
}

/// Contract every mode except mode 0 with `v` via repeated Ttv, returning
/// the resulting dense vector `w_i = Σ x_{i j k …} v_j v_k …`.
fn contract_to_vector<S: Scalar>(x: &CooTensor<S>, v: &DenseVector<S>) -> Result<DenseVector<S>> {
    let mut cur = x.clone();
    while cur.order() > 1 {
        let last = cur.order() - 1;
        cur = ttv(&cur, v, last)?;
    }
    let mut w = DenseVector::zeros(x.shape().dim(0) as usize);
    for (c, val) in cur.iter_entries() {
        w[c[0] as usize] += val;
    }
    Ok(w)
}

/// Resumable power-method state: the current iterate, the last Rayleigh
/// quotient, and the iteration count. A state rebuilt from a checkpoint
/// continues bitwise-identically to an uninterrupted run.
#[derive(Debug, Clone)]
pub struct PowerMethodState<S: Scalar> {
    /// Current unit iterate.
    pub v: DenseVector<S>,
    /// Rayleigh quotient after the last completed iteration.
    pub eigenvalue: S,
    /// Number of completed iterations.
    pub iteration: usize,
    /// `true` once the eigenvalue change fell below the tolerance.
    pub converged: bool,
}

/// Validate the tensor and seed the initial iterate (iteration 0).
pub fn power_method_init<S: Scalar>(x: &CooTensor<S>, seed: u64) -> Result<PowerMethodState<S>> {
    let dims = x.shape().dims();
    if dims.iter().any(|&d| d != dims[0]) {
        return Err(TensorError::InvalidStructure(
            "tensor power method requires a cubical tensor".into(),
        ));
    }
    if x.order() < 2 {
        return Err(TensorError::OrderTooSmall {
            min: 2,
            actual: x.order(),
        });
    }
    let n = dims[0] as usize;
    let mut rng = XorShift64::new(seed);
    let mut v = DenseVector::from_fn(n, |_| S::from_f64(rng.next_f64() + 0.1));
    v.normalize();
    Ok(PowerMethodState {
        v,
        eigenvalue: S::ZERO,
        iteration: 0,
        converged: false,
    })
}

/// Run exactly one power iteration, advancing `state` in place.
///
/// Returns `Ok(true)` when converged (eigenvalue delta below `tol`, never
/// on the first iteration, or on hitting the null space — matching
/// [`tensor_power_method`]'s loop).
pub fn power_method_step<S: Scalar>(
    x: &CooTensor<S>,
    tol: f64,
    state: &mut PowerMethodState<S>,
) -> Result<bool> {
    let it = state.iteration;
    state.iteration += 1;
    let w = contract_to_vector(x, &state.v)?;
    // Rayleigh quotient before normalization: λ = v · w.
    let lambda = state.v.dot(&w);
    let mut next = w;
    let norm = next.normalize();
    if norm == S::ZERO {
        // Hit the null space; report the zero eigenvalue.
        state.eigenvalue = S::ZERO;
        state.converged = true;
        return Ok(true);
    }
    let delta = (lambda.to_f64() - state.eigenvalue.to_f64()).abs();
    state.eigenvalue = lambda;
    state.v = next;
    if it > 0 && delta < tol * (1.0 + state.eigenvalue.to_f64().abs()) {
        state.converged = true;
        return Ok(true);
    }
    Ok(false)
}

/// Run the tensor power method on a cubical tensor: iterate
/// `v <- normalize(X(·, v, …, v))` until the Rayleigh quotient stabilizes.
///
/// The method assumes a (near-)symmetric tensor to converge to an
/// eigen-pair; on arbitrary tensors it still converges to a fixed point of
/// the iteration and serves as a realistic Ttv workload.
pub fn tensor_power_method<S: Scalar>(
    x: &CooTensor<S>,
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> Result<PowerMethodResult<S>> {
    let mut state = power_method_init(x, seed)?;
    while state.iteration < max_iters {
        if power_method_step(x, tol, &mut state)? {
            break;
        }
    }
    Ok(PowerMethodResult {
        eigenvalue: state.eigenvalue,
        eigenvector: state.v,
        iterations: state.iteration,
        converged: state.converged,
    })
}

#[cfg(test)]
mod tests {
    use crate::shape::Shape;

    use super::*;

    /// Symmetric rank-1 tensor x_ijk = u_i u_j u_k with ‖u‖ = 1 has
    /// eigen-pair (1, u).
    fn symmetric_rank_one(u: &[f64]) -> CooTensor<f64> {
        let n = u.len();
        let mut entries = Vec::new();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let v = u[i] * u[j] * u[k];
                    if v != 0.0 {
                        entries.push((vec![i as u32, j as u32, k as u32], v));
                    }
                }
            }
        }
        CooTensor::from_entries(Shape::cubical(3, n as u32), entries).unwrap()
    }

    #[test]
    fn recovers_dominant_eigenpair() {
        let raw = [3.0, 0.0, 4.0];
        let norm = 5.0;
        let u: Vec<f64> = raw.iter().map(|x| x / norm).collect();
        let x = symmetric_rank_one(&u);
        let res = tensor_power_method(&x, 100, 1e-12, 7).unwrap();
        assert!(res.converged);
        assert!((res.eigenvalue - 1.0).abs() < 1e-8, "{}", res.eigenvalue);
        // Eigenvector matches up to sign.
        let dot: f64 = res
            .eigenvector
            .as_slice()
            .iter()
            .zip(&u)
            .map(|(a, b)| a * b)
            .sum();
        assert!((dot.abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_non_cubical() {
        let x = CooTensor::<f64>::empty(Shape::new(vec![2, 3, 2]));
        assert!(tensor_power_method(&x, 10, 1e-6, 1).is_err());
    }

    #[test]
    fn zero_tensor_reports_zero_eigenvalue() {
        let x = CooTensor::<f64>::empty(Shape::cubical(3, 4));
        let res = tensor_power_method(&x, 10, 1e-6, 1).unwrap();
        assert_eq!(res.eigenvalue, 0.0);
        assert!(res.converged);
    }

    #[test]
    fn works_on_matrices() {
        // Order-2: plain power method on a diagonal matrix.
        let x = CooTensor::from_entries(
            Shape::cubical(2, 3),
            vec![(vec![0, 0], 5.0f64), (vec![1, 1], 2.0), (vec![2, 2], 1.0)],
        )
        .unwrap();
        let res = tensor_power_method(&x, 200, 1e-12, 3).unwrap();
        assert!((res.eigenvalue - 5.0).abs() < 1e-6, "{}", res.eigenvalue);
    }
}
