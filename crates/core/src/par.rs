//! Parallel execution helpers — the suite's stand-in for the paper's OpenMP
//! runtime configuration (`§5.1.2`: scheduling strategies and thread counts).

use rayon::prelude::*;

/// Loop scheduling strategy, mirroring OpenMP's `schedule(static)` /
/// `schedule(dynamic, grain)` clauses that the paper tunes per kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous range per worker thread.
    Static,
    /// Work-stealing chunks of at least `grain` iterations.
    Dynamic {
        /// Minimum chunk size handed to a worker.
        grain: usize,
    },
}

impl Default for Schedule {
    fn default() -> Self {
        // Rayon's adaptive splitting behaves like guided/dynamic scheduling;
        // a modest grain keeps per-task overhead low for short fibers.
        Schedule::Dynamic { grain: 64 }
    }
}

/// Run `body(i, &mut out[i])` for every element of `out` in parallel under
/// the given schedule. This is the shape of every fiber- and nonzero-
/// parallel loop in the suite: disjoint output slots, shared read-only
/// inputs.
pub fn par_for_each_indexed<T: Send, F>(out: &mut [T], sched: Schedule, body: F)
where
    F: Fn(usize, &mut T) + Sync + Send,
{
    match sched {
        Schedule::Static => {
            let n = out.len();
            let workers = rayon::current_num_threads().max(1);
            let chunk = n.div_ceil(workers).max(1);
            out.par_chunks_mut(chunk).enumerate().for_each(|(c, slice)| {
                let base = c * chunk;
                for (off, item) in slice.iter_mut().enumerate() {
                    body(base + off, item);
                }
            });
        }
        Schedule::Dynamic { grain } => {
            out.par_iter_mut()
                .with_min_len(grain.max(1))
                .enumerate()
                .for_each(|(i, item)| body(i, item));
        }
    }
}

/// Run `f` on a dedicated rayon pool with `threads` workers. Used by the
/// harness to emulate machines with different core counts (Figure 4 vs 5).
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

/// Number of worker threads in the current pool.
pub fn current_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_schedule_covers_every_index() {
        let mut v = vec![0usize; 1000];
        par_for_each_indexed(&mut v, Schedule::Static, |i, x| *x = i * 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn dynamic_schedule_covers_every_index() {
        let mut v = vec![0usize; 1000];
        par_for_each_indexed(&mut v, Schedule::Dynamic { grain: 16 }, |i, x| *x = i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn zero_grain_is_clamped() {
        let mut v = vec![0u8; 10];
        par_for_each_indexed(&mut v, Schedule::Dynamic { grain: 0 }, |_, x| *x = 1);
        assert_eq!(v, vec![1; 10]);
    }

    #[test]
    fn with_threads_controls_pool_size() {
        let n = with_threads(3, current_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut v: Vec<u32> = vec![];
        par_for_each_indexed(&mut v, Schedule::Static, |_, _| unreachable!());
    }
}
