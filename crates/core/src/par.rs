//! Parallel execution helpers — the suite's stand-in for the paper's OpenMP
//! runtime configuration (`§5.1.2`: scheduling strategies and thread counts).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use rayon::prelude::*;

/// Loop scheduling strategy, mirroring OpenMP's `schedule(static)` /
/// `schedule(dynamic, grain)` clauses that the paper tunes per kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One contiguous range per worker thread.
    Static,
    /// Work-stealing chunks of at least `grain` iterations.
    Dynamic {
        /// Minimum chunk size handed to a worker.
        grain: usize,
    },
}

impl Default for Schedule {
    fn default() -> Self {
        // Rayon's adaptive splitting behaves like guided/dynamic scheduling;
        // a modest grain keeps per-task overhead low for short fibers.
        Schedule::Dynamic { grain: 64 }
    }
}

/// Run `body(i, &mut out[i])` for every element of `out` in parallel under
/// the given schedule. This is the shape of every fiber- and nonzero-
/// parallel loop in the suite: disjoint output slots, shared read-only
/// inputs.
pub fn par_for_each_indexed<T: Send, F>(out: &mut [T], sched: Schedule, body: F)
where
    F: Fn(usize, &mut T) + Sync + Send,
{
    match sched {
        Schedule::Static => {
            let n = out.len();
            let workers = rayon::current_num_threads().max(1);
            let chunk = n.div_ceil(workers).max(1);
            out.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(c, slice)| {
                    let base = c * chunk;
                    for (off, item) in slice.iter_mut().enumerate() {
                        body(base + off, item);
                    }
                });
        }
        Schedule::Dynamic { grain } => {
            out.par_iter_mut()
                .with_min_len(grain.max(1))
                .enumerate()
                .for_each(|(i, item)| body(i, item));
        }
    }
}

/// Run `f` on a dedicated rayon pool with `threads` workers. Used by the
/// harness to emulate machines with different core counts (Figure 4 vs 5).
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

/// Number of worker threads in the current pool.
pub fn current_threads() -> usize {
    rayon::current_num_threads()
}

/// Index of the calling worker thread within the current pool, if any.
///
/// This is a *region-relative* participant slot: it resets in nested
/// regions and sequential fast paths. Keys for per-thread caches should
/// use [`stable_thread_id`] instead.
pub fn current_thread_index() -> Option<usize> {
    rayon::current_thread_index()
}

/// Stable identifier of the calling OS thread (the pool's stable worker
/// index for pool workers, a unique id past the worker range otherwise).
/// Unlike [`current_thread_index`] it never changes across nested
/// parallel regions, so per-thread caches keyed by it cannot collide
/// between two live threads.
pub fn stable_thread_id() -> usize {
    rayon::stable_thread_id()
}

/// The pool's stable worker index for this thread (`None` off-pool).
pub fn stable_worker_index() -> Option<usize> {
    rayon::stable_worker_index()
}

/// Elements per first-touch chunk: large enough to span whole pages so the
/// page-fault cost (the real work of a fresh allocation) is what gets
/// distributed, small enough to load-balance across workers.
const FIRST_TOUCH_GRAIN: usize = 1 << 15;

/// Allocate a `Vec` of `n` copies of `value`, writing (first-touching) the
/// backing pages from parallel workers instead of the allocating thread.
///
/// `vec![v; n]` commits every page from the calling thread: on a NUMA
/// machine the whole buffer lands on that thread's node, and the serial
/// fill is an Amdahl term in front of every parallel kernel that writes a
/// large output (zeroing a 64 MB MTTKRP output serially costs more than
/// the scheduled kernel itself at 8 threads). Touching pages from the
/// workers that will write them spreads both the fault cost and the page
/// placement.
pub fn first_touch_filled<T: Copy + Send + Sync>(n: usize, value: T) -> Vec<T> {
    let mut v: Vec<T> = Vec::with_capacity(n);
    let spare = &mut v.spare_capacity_mut()[..n];
    spare
        .par_chunks_mut(FIRST_TOUCH_GRAIN)
        .with_min_len(1)
        .for_each(|chunk| {
            for slot in chunk {
                slot.write(value);
            }
        });
    // SAFETY: every slot in 0..n was initialized by exactly one chunk.
    unsafe { v.set_len(n) };
    v
}

struct ArenaSlot<T> {
    busy: AtomicBool,
    data: UnsafeCell<Option<T>>,
}

// Safety: `data` is only accessed by the thread that won the `busy`
// try-lock, and `T: Send` allows moving values between threads.
unsafe impl<T: Send> Sync for ArenaSlot<T> {}

/// Reusable per-thread scratch buffers for parallel kernels.
///
/// The atomic kernels in the seed allocated a fresh `vec![S::ZERO; r]` per
/// work chunk — a malloc on the hot path of every chunk of every kernel
/// call. `ScratchArena` keeps one lazily-initialized buffer per worker
/// thread and lends it out for the duration of a closure:
///
/// ```
/// use tenbench_core::par::ScratchArena;
/// let arena = ScratchArena::new(|| vec![0.0f32; 16]);
/// let sum: f32 = arena.with(|scratch| {
///     scratch.fill(1.0);
///     scratch.iter().sum()
/// });
/// assert_eq!(sum, 16.0);
/// ```
///
/// Slots are claimed with an atomic try-lock keyed by the pool's *stable*
/// thread id (not the region-relative `current_thread_index`, which resets
/// to 0 in nested regions and sequential fast paths — two sibling workers
/// running nested loops used to fold onto slot 0 and evict each other), so
/// the arena is safe under nested parallelism or oversubscription: a thread
/// that finds its slot busy simply builds a fresh buffer for that one call.
/// Buffers are handed out dirty — callers must fully initialize the scratch
/// before reading it (every kernel here starts with a `fill`).
pub struct ScratchArena<T, F: Fn() -> T> {
    make: F,
    slots: Box<[ArenaSlot<T>]>,
}

impl<T: Send, F: Fn() -> T + Sync> ScratchArena<T, F> {
    /// Create an arena with one slot per *possible* pool worker plus one
    /// for off-pool callers. Regions are served by whichever pool workers
    /// wake first — not necessarily workers `0..threads` — so sizing by
    /// the instantaneous (or even the widest installed) thread count
    /// would fold distinct live workers onto shared slots. Slots are
    /// lazily filled `Option`s, so the unreached ones cost a word each,
    /// not a buffer.
    pub fn new(make: F) -> Self {
        let n = 1 + rayon::pool_max_workers();
        let slots = (0..n)
            .map(|_| ArenaSlot {
                busy: AtomicBool::new(false),
                data: UnsafeCell::new(None),
            })
            .collect();
        ScratchArena { make, slots }
    }

    /// Pre-build scratch buffers on the pool workers that will use them.
    ///
    /// Buffers are created lazily on first use, which already places each
    /// worker's buffer on the memory local to that worker — but the first
    /// use then pays allocation and page faults *inside* the measured
    /// kernel. `warm()` broadcasts over the current pool so every
    /// participating worker (and the caller) faults its own slot's buffer
    /// in, outside any timed region. Workers that don't participate in
    /// the broadcast simply stay lazy; warming is an optimization, not a
    /// correctness requirement.
    pub fn warm(&self) {
        rayon::broadcast(|_| {
            self.with(|_| {});
        });
        // The broadcast caller participates as one of the logical workers,
        // but make its slot 0 warm unconditionally.
        self.with(|_| {});
    }

    /// Run `f` with this thread's scratch buffer (creating it on first use).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        // Pool worker `w` owns slot `1 + w`; every other thread (usually
        // just the submitting caller) shares slot 0, where the CAS
        // fallback below keeps concurrent foreign threads safe.
        let idx = match stable_worker_index() {
            Some(w) => 1 + w,
            None => 0,
        };
        let slot = &self.slots[idx];
        if slot
            .busy
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // Safety: the CAS above grants exclusive access until the
            // release store below.
            let data = unsafe { &mut *slot.data.get() };
            let out = f(data.get_or_insert_with(&self.make));
            slot.busy.store(false, Ordering::Release);
            out
        } else {
            // Slot contended (nested parallel section): fall back to a
            // one-shot buffer rather than blocking.
            let mut fresh = (self.make)();
            f(&mut fresh)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_schedule_covers_every_index() {
        let mut v = vec![0usize; 1000];
        par_for_each_indexed(&mut v, Schedule::Static, |i, x| *x = i * 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn dynamic_schedule_covers_every_index() {
        let mut v = vec![0usize; 1000];
        par_for_each_indexed(&mut v, Schedule::Dynamic { grain: 16 }, |i, x| *x = i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn zero_grain_is_clamped() {
        let mut v = vec![0u8; 10];
        par_for_each_indexed(&mut v, Schedule::Dynamic { grain: 0 }, |_, x| *x = 1);
        assert_eq!(v, vec![1; 10]);
    }

    #[test]
    fn with_threads_controls_pool_size() {
        let n = with_threads(3, current_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn empty_slice_is_a_no_op() {
        let mut v: Vec<u32> = vec![];
        par_for_each_indexed(&mut v, Schedule::Static, |_, _| unreachable!());
    }

    #[test]
    fn scratch_arena_reuses_buffers_across_calls() {
        use std::sync::atomic::AtomicUsize;
        let allocs = AtomicUsize::new(0);
        let arena = ScratchArena::new(|| {
            allocs.fetch_add(1, Ordering::Relaxed);
            vec![0.0f64; 8]
        });
        for i in 0..100 {
            arena.with(|s| {
                s.fill(i as f64);
                assert_eq!(s[7], i as f64);
            });
        }
        // Sequential caller: exactly one buffer ever built.
        assert_eq!(allocs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scratch_arena_nested_use_falls_back_safely() {
        let arena = ScratchArena::new(|| vec![0u32; 4]);
        let out = arena.with(|outer| {
            outer.fill(1);
            // Same thread re-enters: slot is busy, fallback buffer used.
            let inner_sum: u32 = arena.with(|inner| {
                inner.fill(2);
                inner.iter().sum()
            });
            outer.iter().sum::<u32>() + inner_sum
        });
        assert_eq!(out, 4 + 8);
    }

    #[test]
    fn scratch_arena_parallel_use_is_consistent() {
        let arena = ScratchArena::new(|| vec![0usize; 16]);
        let results: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map(|i| {
                arena.with(|s| {
                    s.fill(i);
                    s.iter().sum::<usize>()
                })
            })
            .collect();
        assert!(results.iter().enumerate().all(|(i, &r)| r == i * 16));
    }

    #[test]
    fn scratch_arena_keys_by_stable_worker_index_under_nesting() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        // Regression: arena slots used to be keyed by the region-relative
        // `current_thread_index()`, which resets to Some(0) inside nested
        // (fast-path) regions — two sibling outer workers holding scratch
        // simultaneously both mapped to slot 0, so one of them built a
        // fresh fallback buffer on every call. Stable worker ids give each
        // OS thread its own slot: the allocation count stays bounded by
        // the number of participating threads no matter how many rounds
        // run.
        let allocs = AtomicUsize::new(0);
        let arena = ScratchArena::new(|| {
            allocs.fetch_add(1, Ordering::Relaxed);
            vec![0u64; 4]
        });
        let rounds = 16;
        with_threads(2, || {
            let barrier = Barrier::new(2);
            (0..2usize).into_par_iter().with_min_len(1).for_each(|_| {
                for _ in 0..rounds {
                    // A 1-element nested region takes the sequential fast
                    // path, where current_thread_index() is Some(0) on
                    // both workers but stable ids stay distinct.
                    (0..1usize).into_par_iter().for_each(|_| {
                        barrier.wait();
                        arena.with(|s| {
                            s[0] += 1;
                            // Both threads are inside `with` right now, so
                            // a slot collision would force a fallback
                            // allocation this round.
                            barrier.wait();
                        });
                    });
                }
            });
        });
        let n = allocs.load(Ordering::Relaxed);
        assert!(
            n <= 2,
            "one buffer per OS thread expected, saw {n} allocations"
        );
    }

    #[test]
    fn first_touch_filled_matches_plain_fill() {
        let v = first_touch_filled(100_000, 7u32);
        assert_eq!(v.len(), 100_000);
        assert!(v.iter().all(|&x| x == 7));
        let w = with_threads(4, || first_touch_filled(70_001, 1.5f64));
        assert!(w.iter().all(|&x| x == 1.5));
        let empty: Vec<f32> = first_touch_filled(0, 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn scratch_arena_warm_prefaults_caller_slot() {
        use std::sync::atomic::AtomicUsize;
        let allocs = AtomicUsize::new(0);
        let arena = ScratchArena::new(|| {
            allocs.fetch_add(1, Ordering::Relaxed);
            vec![0u8; 8]
        });
        with_threads(2, || arena.warm());
        let warmed = allocs.load(Ordering::Relaxed);
        assert!(warmed >= 1, "warm() builds at least the caller's buffer");
        // The caller's slot is now warm: sequential reuse allocates nothing.
        arena.with(|s| s[0] = 1);
        arena.with(|s| assert_eq!(s[0], 1));
        assert_eq!(allocs.load(Ordering::Relaxed), warmed);
    }

    #[test]
    fn scratch_arena_buffers_are_simd_aligned() {
        use crate::align::{AlignedVec, SIMD_ALIGN};
        // Kernel scratch factories build AlignedVecs, so every buffer the
        // arena lends out — per-worker slot or contended fallback — starts
        // 64-byte aligned and vector loads never take the unaligned path.
        let arena = ScratchArena::new(|| AlignedVec::filled(17, 0.0f32));
        with_threads(2, || {
            (0..32usize).into_par_iter().with_min_len(1).for_each(|_| {
                arena.with(|s| {
                    assert_eq!(s.as_slice().as_ptr() as usize % SIMD_ALIGN, 0);
                    // Nested use exercises the contended-fallback buffer.
                    arena.with(|inner| {
                        assert_eq!(inner.as_slice().as_ptr() as usize % SIMD_ALIGN, 0);
                    });
                });
            });
        });
    }

    #[test]
    fn scratch_arena_sized_for_installed_pools() {
        // Installing a wide pool first means an arena created *outside* any
        // install scope still gets one slot per potential worker.
        with_threads(5, || {});
        let arena = ScratchArena::new(|| 0u8);
        assert!(arena.slots.len() >= 5, "slots = {}", arena.slots.len());
    }
}
