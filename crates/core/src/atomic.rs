//! Lock-free floating-point accumulation.
//!
//! The paper's parallel COO-Mttkrp protects its output matrix with
//! `omp atomic` on CPUs and `atomicAdd` on GPUs. Rust has no atomic floats in
//! the standard library, so this module provides CAS-loop `fetch_add` cells
//! with the same layout as the underlying float, allowing a `&mut [f32]` to
//! be viewed as `&[AtomicF32]` for the duration of a parallel region.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// An atomic cell holding a floating-point value, supporting relaxed
/// `fetch_add` via a compare-and-swap loop.
///
/// Relaxed ordering is sufficient here: the additions commute, nothing is
/// published through the cells, and the surrounding rayon join forms the
/// happens-before edge back to the owning thread (see *Rust Atomics and
/// Locks*, ch. 2–3).
pub trait AtomicScalar: Sync + Send + Sized {
    /// The plain value type stored in the cell.
    type Value: Copy;

    /// Atomically add `v` to the cell and return the previous value.
    fn fetch_add(&self, v: Self::Value) -> Self::Value;
    /// Atomically load the current value.
    fn load(&self) -> Self::Value;
    /// Atomically store a value.
    fn store(&self, v: Self::Value);
    /// Reinterpret a mutable slice of plain values as a slice of cells.
    fn from_mut_slice(slice: &mut [Self::Value]) -> &[Self];
}

macro_rules! atomic_float {
    ($name:ident, $float:ty, $atomic:ty, $bits:ty, $doc:literal) => {
        #[doc = $doc]
        #[repr(transparent)]
        pub struct $name($atomic);

        impl $name {
            /// Create a cell holding `v`.
            pub fn new(v: $float) -> Self {
                Self(<$atomic>::new(v.to_bits()))
            }
        }

        impl AtomicScalar for $name {
            type Value = $float;

            #[inline]
            fn fetch_add(&self, v: $float) -> $float {
                let mut cur = self.0.load(Ordering::Relaxed);
                loop {
                    let new = (<$float>::from_bits(cur) + v).to_bits();
                    match self.0.compare_exchange_weak(
                        cur,
                        new,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(prev) => return <$float>::from_bits(prev),
                        Err(actual) => cur = actual,
                    }
                }
            }

            #[inline]
            fn load(&self) -> $float {
                <$float>::from_bits(self.0.load(Ordering::Relaxed))
            }

            #[inline]
            fn store(&self, v: $float) {
                self.0.store(v.to_bits(), Ordering::Relaxed)
            }

            #[inline]
            fn from_mut_slice(slice: &mut [$float]) -> &[Self] {
                // SAFETY: `$name` is `repr(transparent)` over the atomic
                // integer, which has the same size and alignment as `$float`
                // (IEEE-754 bit layout). The `&mut` receiver guarantees the
                // caller holds the only reference, so converting to a shared
                // slice of atomic cells cannot alias non-atomic accesses.
                unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const Self, slice.len()) }
            }
        }
    };
}

atomic_float!(
    AtomicF32,
    f32,
    AtomicU32,
    u32,
    "Atomic `f32` cell backed by `AtomicU32` (same layout as `f32`)."
);
atomic_float!(
    AtomicF64,
    f64,
    AtomicU64,
    u64,
    "Atomic `f64` cell backed by `AtomicU64` (same layout as `f64`)."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_add_returns_previous() {
        let a = AtomicF32::new(1.5);
        assert_eq!(a.fetch_add(2.0), 1.5);
        assert_eq!(a.load(), 3.5);
    }

    #[test]
    fn store_overwrites() {
        let a = AtomicF64::new(0.0);
        a.store(-7.25);
        assert_eq!(a.load(), -7.25);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        use std::sync::atomic::AtomicUsize;
        let mut data = vec![0.0f64; 1];
        let cells = AtomicF64::from_mut_slice(&mut data);
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        cells[0].fetch_add(1.0);
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(data[0], 80_000.0);
    }

    #[test]
    fn slice_view_preserves_length() {
        let mut data = vec![1.0f32, 2.0, 3.0];
        let cells = AtomicF32::from_mut_slice(&mut data);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[2].load(), 3.0);
    }
}
