//! Equivalence proptests for the parallel radix sort pipeline.
//!
//! The conversion pipeline (PR: persistent pool + radix sorts) must be a
//! drop-in replacement for the comparator sorts: on every input — including
//! duplicate coordinates, which exercise the index tie-break — the radix
//! backend must produce the *exact* permutation of the sequential
//! comparator backend, and the result must be identical at every thread
//! count.

use proptest::prelude::*;
use tenbench_core::coo::{CooTensor, SortAlgo};
use tenbench_core::hicoo::{GHicooTensor, HicooTensor};
use tenbench_core::par::with_threads;
use tenbench_core::shape::Shape;

/// Deterministic SplitMix64 for building random tensors from one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random COO tensor with *duplicate coordinates kept* (built through
/// `from_parts`, which does not dedup) so that stability / tie-breaking is
/// actually observable. Values are distinct, so any permutation difference
/// between two sort backends shows up as a value-array mismatch.
fn random_tensor(seed: u64) -> CooTensor<f32> {
    let mut rng = Rng(seed);
    let order = 2 + rng.below(3) as usize; // 2..=4
    let dims: Vec<u32> = (0..order)
        .map(|m| {
            if m == 0 && rng.below(3) == 0 {
                // Occasionally a long mode: multi-byte radix passes.
                1 + rng.below(100_000) as u32
            } else {
                1 + rng.below(64) as u32
            }
        })
        .collect();
    let m = rng.below(2_000) as usize;
    let inds: Vec<Vec<u32>> = dims
        .iter()
        .map(|&d| (0..m).map(|_| rng.below(d as u64) as u32).collect())
        .collect();
    // Low-entropy coordinates in a quarter of the cases: many exact
    // duplicates, the tie-break torture test.
    let inds = if rng.below(4) == 0 {
        inds.iter()
            .map(|arr| arr.iter().map(|&x| x % 3).collect())
            .collect()
    } else {
        inds
    };
    let vals: Vec<f32> = (0..m).map(|i| i as f32).collect();
    CooTensor::from_parts(Shape::new(dims), inds, vals).unwrap()
}

fn mode_order(seed: u64, order: usize) -> Vec<usize> {
    let mut rng = Rng(seed ^ 0xDEAD_BEEF);
    let mut perm: Vec<usize> = (0..order).collect();
    for i in (1..order).rev() {
        perm.swap(i, rng.below((i + 1) as u64) as usize);
    }
    perm
}

proptest! {
    #[test]
    fn lexicographic_radix_equals_comparator(seed in 0u64..u64::MAX) {
        let t = random_tensor(seed);
        let order = mode_order(seed, t.order());
        let mut a = t.clone();
        let mut b = t;
        a.sort_lexicographic_with(&order, SortAlgo::Radix);
        b.sort_lexicographic_with(&order, SortAlgo::Comparator);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn morton_radix_equals_comparator(seed in 0u64..u64::MAX, bb in 1u8..=8) {
        let t = random_tensor(seed);
        let mut a = t.clone();
        let mut b = t;
        a.sort_morton_with(bb, SortAlgo::Radix);
        b.sort_morton_with(bb, SortAlgo::Comparator);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn lexicographic_sort_is_thread_count_invariant(seed in 0u64..u64::MAX) {
        let t = random_tensor(seed);
        let order = mode_order(seed, t.order());
        let reference = {
            let mut r = t.clone();
            with_threads(1, || r.sort_lexicographic(&order));
            r
        };
        for threads in [2usize, 4] {
            let mut s = t.clone();
            with_threads(threads, || s.sort_lexicographic(&order));
            prop_assert_eq!(&s, &reference, "threads = {}", threads);
        }
    }

    #[test]
    fn morton_sort_is_thread_count_invariant(seed in 0u64..u64::MAX, bb in 1u8..=8) {
        let t = random_tensor(seed);
        let reference = {
            let mut r = t.clone();
            with_threads(1, || r.sort_morton(bb));
            r
        };
        for threads in [2usize, 4] {
            let mut s = t.clone();
            with_threads(threads, || s.sort_morton(bb));
            prop_assert_eq!(&s, &reference, "threads = {}", threads);
        }
    }

    #[test]
    fn hicoo_conversion_is_thread_count_invariant(seed in 0u64..u64::MAX, bb in 1u8..=8) {
        let t = random_tensor(seed);
        let reference = with_threads(1, || HicooTensor::from_coo(&t, bb)).unwrap();
        prop_assert_eq!(reference.to_coo().to_map(), t.to_map());
        for threads in [2usize, 4] {
            let h = with_threads(threads, || HicooTensor::from_coo(&t, bb)).unwrap();
            prop_assert_eq!(&h, &reference, "threads = {}", threads);
        }
    }

    #[test]
    fn ghicoo_conversion_is_thread_count_invariant(
        seed in 0u64..u64::MAX,
        bb in 1u8..=8,
        cmask in 0u8..16,
    ) {
        let t = random_tensor(seed);
        let compressed: Vec<bool> = (0..t.order()).map(|m| cmask & (1 << m) != 0).collect();
        let reference =
            with_threads(1, || GHicooTensor::from_coo(&t, bb, &compressed)).unwrap();
        prop_assert_eq!(reference.to_coo().to_map(), t.to_map());
        for threads in [2usize, 4] {
            let g = with_threads(threads, || GHicooTensor::from_coo(&t, bb, &compressed)).unwrap();
            prop_assert_eq!(&g, &reference, "threads = {}", threads);
        }
    }
}
