//! SIMD/scalar equivalence proptests for every kernel.
//!
//! The SIMD backend is engineered to be *order-identical* to the scalar
//! loops (lane-wise primitives, no FMA contraction, no horizontal
//! reductions), so the contract tested here is stronger than a ULP bound:
//! every kernel must produce **bitwise identical** results under
//! `KernelBackend::Scalar` and `KernelBackend::Simd` — on ranks that are
//! not lane multiples (3, 5, 7, 17), on empty and singleton tensors from
//! the degenerate battery, and at every thread count 1..=4. A bitwise
//! match trivially satisfies the "within tight ULP" acceptance bound and
//! is what keeps `resume_determinism` and the chaos harness honest when
//! the SIMD backend is the session default.

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::{DenseMatrix, DenseVector};
use tenbench_core::hicoo::{HicooTensor, VbHicooTensor};
use tenbench_core::kernels::{mttkrp, tew, ts, ttm, ttv, EwOp};
use tenbench_core::par::with_threads;
use tenbench_core::shape::Shape;
use tenbench_core::simd::KernelBackend;

use proptest::prelude::*;

const BLOCK_BITS: u8 = 2;
/// None of these is a multiple of the f32 lane width (8), so every SIMD
/// inner loop ends in a partial vector.
const RANKS: [usize; 4] = [3, 5, 7, 17];

/// Deterministic SplitMix64 for building random tensors from one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random deduplicated COO tensor with adversarial values (mixed signs
/// and magnitudes, so reassociation or contraction would actually move
/// bits).
fn random_tensor(seed: u64) -> CooTensor<f32> {
    let mut rng = Rng(seed);
    let order = 2 + rng.below(3) as usize; // 2..=4
    let dims: Vec<u32> = (0..order).map(|_| 2 + rng.below(24) as u32).collect();
    let m = rng.below(600) as usize;
    let entries: Vec<(Vec<u32>, f32)> = (0..m)
        .map(|i| {
            let idx: Vec<u32> = dims.iter().map(|&d| rng.below(d as u64) as u32).collect();
            let mag = (rng.below(1000) as f32 + 1.0) * 1e-3;
            let v = if rng.below(2) == 0 { mag } else { -mag } * (1.0 + (i % 7) as f32);
            (idx, v)
        })
        .collect();
    CooTensor::from_entries(Shape::new(dims), entries).unwrap()
}

fn empty() -> CooTensor<f32> {
    CooTensor::empty(Shape::new(vec![8, 8, 8]))
}

fn singleton() -> CooTensor<f32> {
    CooTensor::from_entries(Shape::new(vec![8, 8, 8]), vec![(vec![3, 5, 2], 2.5)]).unwrap()
}

fn make_partner(x: &CooTensor<f32>) -> CooTensor<f32> {
    let mut y = x.clone();
    y.vals_mut().iter_mut().for_each(|v| *v = *v * 2.0 + 0.5);
    y
}

fn make_factors(x: &CooTensor<f32>, r: usize) -> Vec<DenseMatrix<f32>> {
    (0..x.order())
        .map(|m| {
            DenseMatrix::from_fn(x.shape().dim(m) as usize, r, |i, j| {
                (((i * 31 + j * 17 + m * 7) % 1000) as f32 - 500.0) * 1e-3
            })
        })
        .collect()
}

fn assert_bits(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

/// Every kernel, every format, scalar vs SIMD, bitwise.
fn exercise(name: &str, x: &CooTensor<f32>, rank: usize) {
    let y = make_partner(x);
    let hx = HicooTensor::from_coo(x, BLOCK_BITS).unwrap();
    let hy = HicooTensor::from_coo(&y, BLOCK_BITS).unwrap();
    let vx = VbHicooTensor::from_hicoo(&hx);
    let vy = VbHicooTensor::from_hicoo(&hy);
    let factors = make_factors(x, rank);
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    let (s, v) = (KernelBackend::Scalar, KernelBackend::Simd);

    for op in [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div] {
        let a = tew::tew_same_pattern_backend(x, &y, op, s).unwrap();
        let b = tew::tew_same_pattern_backend(x, &y, op, v).unwrap();
        assert_bits(&format!("{name}/tew/coo/{op:?}"), a.vals(), b.vals());
        let a = tew::tew_hicoo_same_pattern_backend(&hx, &hy, op, s).unwrap();
        let b = tew::tew_hicoo_same_pattern_backend(&hx, &hy, op, v).unwrap();
        assert_bits(&format!("{name}/tew/hicoo/{op:?}"), a.vals(), b.vals());
        let a = tew::tew_vb_same_pattern_backend(&vx, &vy, op, s).unwrap();
        let b = tew::tew_vb_same_pattern_backend(&vx, &vy, op, v).unwrap();
        assert_bits(
            &format!("{name}/tew/vb/{op:?}"),
            a.padded_vals(),
            b.padded_vals(),
        );

        let a = ts::ts_backend(x, 1.73, op, s).unwrap();
        let b = ts::ts_backend(x, 1.73, op, v).unwrap();
        assert_bits(&format!("{name}/ts/coo/{op:?}"), a.vals(), b.vals());
        let a = ts::ts_hicoo_backend(&hx, 1.73, op, s).unwrap();
        let b = ts::ts_hicoo_backend(&hx, 1.73, op, v).unwrap();
        assert_bits(&format!("{name}/ts/hicoo/{op:?}"), a.vals(), b.vals());
        let a = ts::ts_vb_backend(&vx, 1.73, op, s).unwrap();
        let b = ts::ts_vb_backend(&vx, 1.73, op, v).unwrap();
        assert_bits(
            &format!("{name}/ts/vb/{op:?}"),
            a.padded_vals(),
            b.padded_vals(),
        );
    }

    for mode in 0..x.order() {
        let w = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i as f32 - 3.0) * 0.25);
        let a = ttv::ttv_backend(x, &w, mode, s).unwrap();
        let b = ttv::ttv_backend(x, &w, mode, v).unwrap();
        assert_bits(&format!("{name}/ttv/coo/m{mode}"), a.vals(), b.vals());
        let a = ttv::ttv_hicoo_sched_backend(&hx, &w, mode, s).unwrap();
        let b = ttv::ttv_hicoo_sched_backend(&hx, &w, mode, v).unwrap();
        assert_bits(&format!("{name}/ttv/hicoo/m{mode}"), a.vals(), b.vals());

        let a = ttm::ttm_backend(x, frefs[mode], mode, s).unwrap();
        let b = ttm::ttm_backend(x, frefs[mode], mode, v).unwrap();
        assert_bits(&format!("{name}/ttm/coo/m{mode}"), a.vals(), b.vals());
        let a = ttm::ttm_hicoo_sched_backend(&hx, frefs[mode], mode, s).unwrap();
        let b = ttm::ttm_hicoo_sched_backend(&hx, frefs[mode], mode, v).unwrap();
        assert_bits(&format!("{name}/ttm/hicoo/m{mode}"), a.vals(), b.vals());

        let a = mttkrp::mttkrp_atomic_backend(x, &frefs, mode, s).unwrap();
        let b = mttkrp::mttkrp_atomic_backend(x, &frefs, mode, v).unwrap();
        assert_bits(&format!("{name}/mttkrp/coo/m{mode}"), a.data(), b.data());
        let a = mttkrp::mttkrp_hicoo_sched_backend(&hx, &frefs, mode, s).unwrap();
        let b = mttkrp::mttkrp_hicoo_sched_backend(&hx, &frefs, mode, v).unwrap();
        assert_bits(&format!("{name}/mttkrp/hicoo/m{mode}"), a.data(), b.data());
        let a = mttkrp::mttkrp_vb_sched_backend(&vx, &frefs, mode, s).unwrap();
        let b = mttkrp::mttkrp_vb_sched_backend(&vx, &frefs, mode, v).unwrap();
        assert_bits(&format!("{name}/mttkrp/vb/m{mode}"), a.data(), b.data());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn simd_matches_scalar_bitwise_on_random_tensors(seed in 0u64..u64::MAX) {
        let x = random_tensor(seed);
        let rank = RANKS[(seed % RANKS.len() as u64) as usize];
        let threads = 1 + (seed / 7) as usize % 4;
        with_threads(threads, || exercise("random", &x, rank));
    }
}

#[test]
fn simd_matches_scalar_on_degenerate_tensors_at_every_thread_count() {
    for threads in 1..=4usize {
        with_threads(threads, || {
            for rank in RANKS {
                exercise("empty", &empty(), rank);
                exercise("singleton", &singleton(), rank);
            }
        });
    }
}

/// Scheduled+SIMD MTTKRP must be bitwise-stable run to run at a fixed
/// thread count: the schedule partitions deterministically and the SIMD
/// accumulation order is fixed, so checkpoint resume and the chaos
/// harness's bitwise job comparison stay valid with SIMD enabled.
#[test]
fn scheduled_simd_mttkrp_is_bitwise_stable_across_runs() {
    let x = random_tensor(0xC0FFEE);
    let hx = HicooTensor::from_coo(&x, BLOCK_BITS).unwrap();
    let vx = VbHicooTensor::from_hicoo(&hx);
    let factors = make_factors(&x, 17);
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    for threads in [1usize, 3] {
        with_threads(threads, || {
            for mode in 0..x.order() {
                let first =
                    mttkrp::mttkrp_hicoo_sched_backend(&hx, &frefs, mode, KernelBackend::Simd)
                        .unwrap();
                let vfirst =
                    mttkrp::mttkrp_vb_sched_backend(&vx, &frefs, mode, KernelBackend::Simd)
                        .unwrap();
                assert_bits(
                    &format!("hicoo-vs-vb/m{mode}/t{threads}"),
                    first.data(),
                    vfirst.data(),
                );
                for rep in 0..3 {
                    let again =
                        mttkrp::mttkrp_hicoo_sched_backend(&hx, &frefs, mode, KernelBackend::Simd)
                            .unwrap();
                    assert_bits(
                        &format!("stability/m{mode}/t{threads}/rep{rep}"),
                        first.data(),
                        again.data(),
                    );
                    let vagain =
                        mttkrp::mttkrp_vb_sched_backend(&vx, &frefs, mode, KernelBackend::Simd)
                            .unwrap();
                    assert_bits(
                        &format!("vb-stability/m{mode}/t{threads}/rep{rep}"),
                        vfirst.data(),
                        vagain.data(),
                    );
                }
            }
        });
    }
}
