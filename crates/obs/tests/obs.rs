//! Integration tests for the obs crate: capture lifecycle, multi-thread
//! span recording, chrome-trace validity, counter merge associativity,
//! and span-structure determinism across thread counts.
//!
//! Tracing and counters are process-wide, so every test that starts a
//! capture serializes through [`obs_lock`]. Cargo runs tests within one
//! binary on parallel threads; without the lock one test's `stop_trace`
//! would drain another's events.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use tenbench_obs as obs;
use tenbench_obs::json::{validate_chrome_trace, Value};
use tenbench_obs::report::MetricsReport;

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panicking test poisons the mutex; later tests still need the
    // exclusion, not the poison.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Phase-level instrumented workload: one outer span on the calling
/// thread, `total` leaf spans split across `threads` std threads. The
/// span *structure* (path -> completed count) must not depend on how the
/// leaves were distributed.
fn run_workload(threads: usize, total: usize) {
    let _outer = obs::span!("work.outer");
    let per = total / threads;
    assert_eq!(per * threads, total, "total must divide evenly");
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..per {
                    let _leaf = obs::span!("work.chunk");
                    std::hint::black_box(0u64);
                }
            });
        }
    });
}

#[test]
fn disabled_span_records_nothing() {
    let _g = obs_lock();
    assert!(!obs::is_tracing());
    {
        let _s = obs::span!("should.not.appear");
    }
    obs::start_trace();
    let trace = obs::stop_trace();
    assert!(trace
        .span_aggregates()
        .iter()
        .all(|s| s.name != "should.not.appear"));
}

#[test]
fn nested_spans_aggregate_with_self_time() {
    let _g = obs_lock();
    obs::start_trace();
    {
        let _outer = obs::span!("t.outer");
        for _ in 0..3 {
            let _inner = obs::span!("t.inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let trace = obs::stop_trace();
    let aggs = trace.span_aggregates();
    let outer = aggs.iter().find(|s| s.name == "t.outer").unwrap();
    let inner = aggs.iter().find(|s| s.name == "t.inner").unwrap();
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 3);
    // The outer span's total covers its children; its self time does not.
    assert!(outer.total_ns >= inner.total_ns);
    assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
    let structure = trace.span_structure();
    assert_eq!(structure.get("t.outer"), Some(&1));
    assert_eq!(structure.get("t.outer/t.inner"), Some(&3));
}

#[test]
fn multithreaded_capture_produces_valid_chrome_trace() {
    let _g = obs_lock();
    obs::start_trace();
    run_workload(4, 12);
    obs::counters::FLOPS.add(7);
    let trace = obs::stop_trace();
    assert_eq!(trace.dropped_events, 0);
    let json = trace.to_chrome_json();
    let summary = validate_chrome_trace(&json).expect("emitted trace validates");
    // 1 outer + 12 leaves, a B and an E each.
    assert_eq!(summary.duration_events, 2 * 13);
    assert!(summary.threads >= 1);
    assert!(summary.max_depth >= 1);
    // Counters ride along in otherData.
    let doc = Value::parse(&json).unwrap();
    let flops = doc
        .get("otherData")
        .and_then(|o| o.get("kernel.flops"))
        .and_then(Value::as_f64)
        .unwrap();
    assert!(flops >= 7.0);
}

#[test]
fn span_structure_is_deterministic_across_thread_counts() {
    let _g = obs_lock();
    let mut structures = Vec::new();
    for threads in [1usize, 2, 3, 4] {
        obs::start_trace();
        run_workload(threads, 12);
        let trace = obs::stop_trace();
        structures.push(trace.span_structure());
    }
    for s in &structures[1..] {
        assert_eq!(
            s, &structures[0],
            "span structure must not depend on thread count"
        );
    }
    assert_eq!(structures[0].get("work.outer"), Some(&1));
    assert_eq!(structures[0].get("work.chunk"), Some(&12));
}

#[test]
fn validator_rejects_malformed_traces() {
    // Mismatched close name.
    let bad = r#"{"traceEvents":[
        {"ph":"B","pid":1,"tid":0,"ts":0.0,"name":"a"},
        {"ph":"E","pid":1,"tid":0,"ts":1.0,"name":"b"}
    ]}"#;
    assert!(validate_chrome_trace(bad).is_err());
    // Unclosed begin.
    let bad = r#"{"traceEvents":[{"ph":"B","pid":1,"tid":0,"ts":0.0,"name":"a"}]}"#;
    assert!(validate_chrome_trace(bad).is_err());
    // Backwards timestamps on one lane.
    let bad = r#"{"traceEvents":[
        {"ph":"B","pid":1,"tid":0,"ts":5.0,"name":"a"},
        {"ph":"E","pid":1,"tid":0,"ts":1.0,"name":"a"}
    ]}"#;
    assert!(validate_chrome_trace(bad).is_err());
    // Not JSON at all.
    assert!(validate_chrome_trace("nonsense").is_err());
    // A well-formed minimal trace passes.
    let good = r#"{"traceEvents":[
        {"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"t"}},
        {"ph":"B","pid":1,"tid":0,"ts":0.0,"name":"a"},
        {"ph":"E","pid":1,"tid":0,"ts":1.0,"name":"a"}
    ]}"#;
    let s = validate_chrome_trace(good).unwrap();
    assert_eq!(s.total_events, 3);
    assert_eq!(s.duration_events, 2);
}

/// Async/flow phases (`b`/`e`/`s`/`f`) are legal outside the B/E span
/// stack but still require a name, a finite timestamp, and an id.
#[test]
fn validator_accepts_flow_phases_and_requires_their_ids() {
    let good = r#"{"traceEvents":[
        {"ph":"b","pid":1,"tid":0,"ts":0.0,"name":"request","cat":"tenbench.flow","id":7},
        {"ph":"s","pid":1,"tid":0,"ts":1.0,"name":"request.queue","cat":"tenbench.flow","id":7},
        {"ph":"f","pid":1,"tid":3,"ts":2.0,"name":"request.queue","cat":"tenbench.flow","id":7,"bp":"e"},
        {"ph":"e","pid":1,"tid":3,"ts":3.0,"name":"request","cat":"tenbench.flow","id":7}
    ]}"#;
    let s = validate_chrome_trace(good).expect("flow-only trace validates");
    assert_eq!(s.total_events, 4);
    assert_eq!(s.flow_events, 4);
    assert_eq!(s.duration_events, 0);
    // Flow events do not perturb span-stack checking on the same lane.
    let mixed = r#"{"traceEvents":[
        {"ph":"B","pid":1,"tid":0,"ts":0.0,"name":"a"},
        {"ph":"s","pid":1,"tid":0,"ts":1.0,"name":"request.queue","id":"0x7"},
        {"ph":"E","pid":1,"tid":0,"ts":2.0,"name":"a"}
    ]}"#;
    let s = validate_chrome_trace(mixed).expect("mixed trace validates");
    assert_eq!(s.duration_events, 2);
    assert_eq!(s.flow_events, 1);
    // Missing id is a schema violation.
    let bad = r#"{"traceEvents":[{"ph":"b","pid":1,"tid":0,"ts":0.0,"name":"request"}]}"#;
    assert!(validate_chrome_trace(bad).is_err());
    // Non-finite timestamp too.
    let bad = r#"{"traceEvents":[{"ph":"f","pid":1,"tid":0,"ts":1e999,"name":"x","id":1}]}"#;
    assert!(validate_chrome_trace(bad).is_err());
}

/// A capture with installed trace contexts exports the request lifecycle
/// as async/flow events carrying the minted id, and the result still
/// passes the validator.
#[test]
fn captured_flow_events_export_with_their_ctx_id() {
    let _g = obs_lock();
    obs::start_trace();
    let ctx = obs::TraceCtx::mint("request");
    obs::ctx::async_begin("request", ctx);
    obs::ctx::flow_send("request.queue", ctx);
    std::thread::scope(|s| {
        s.spawn(|| {
            let _guard = obs::ctx::install(ctx);
            obs::ctx::flow_recv("request.queue", ctx);
            let _span = obs::span!("request.exec");
            obs::ctx::async_end("request", ctx);
        });
    });
    let trace = obs::stop_trace();
    let json = trace.to_chrome_json();
    let summary = validate_chrome_trace(&json).expect("flow trace validates");
    assert_eq!(summary.flow_events, 4);
    assert_eq!(summary.duration_events, 2);
    // Every flow event carries the minted id, stitching the lanes.
    let doc = Value::parse(&json).unwrap();
    let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
    let mut phases = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap();
        if matches!(ph, "b" | "e" | "s" | "f") {
            phases.push(ph.to_string());
            assert_eq!(ev.get("id").and_then(Value::as_f64), Some(ctx.id as f64));
            assert_eq!(ev.get("cat").and_then(Value::as_str), Some("tenbench.flow"));
        }
    }
    phases.sort();
    assert_eq!(phases, ["b", "e", "f", "s"]);
}

#[test]
fn metrics_report_json_parses_and_renders() {
    let _g = obs_lock();
    obs::start_trace();
    {
        let _s = obs::span!("r.span");
        obs::counters::BYTES.add(4096);
    }
    let trace = obs::stop_trace();
    let report = MetricsReport::from_trace(&trace);
    assert!(report
        .counters
        .iter()
        .any(|(n, v)| n == "kernel.bytes" && *v >= 4096));
    let json = report.to_json();
    let doc = Value::parse(&json).expect("report JSON parses");
    assert!(doc.get("counters").is_some());
    assert!(doc.get("spans").is_some());
    let text = report.render();
    assert!(text.contains("kernel.bytes"));
    assert!(text.contains("r.span"));
}

proptest! {
    /// Counter totals are the sum of contributions no matter how they are
    /// partitioned across threads: splitting one stream of increments
    /// into k concurrent streams leaves the drained total unchanged.
    #[test]
    fn counter_merge_is_associative(amounts in prop::collection::vec(0u64..1_000, 1..64), k in 1usize..8) {
        let _g = obs_lock();
        let expected: u64 = amounts.iter().sum();

        obs::start_trace();
        let chunk = amounts.len().div_ceil(k);
        std::thread::scope(|s| {
            for part in amounts.chunks(chunk) {
                s.spawn(move || {
                    for &a in part {
                        obs::counters::SORT_KEYS.add(a);
                    }
                });
            }
        });
        let trace = obs::stop_trace();

        let total = trace
            .counters
            .iter()
            .find(|(n, _)| n == "radix.keys_sorted")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        prop_assert_eq!(total, expected);
    }

    /// The minimal JSON parser accepts what `escape_json` produces, for
    /// arbitrary strings (including control characters and quotes).
    #[test]
    fn escape_json_round_trips(codes in prop::collection::vec(0u32..0x1_0000, 0..48)) {
        let s: String = codes
            .iter()
            .map(|&c| char::from_u32(c).unwrap_or('\u{FFFD}'))
            .collect();
        let doc = format!("{{\"k\":\"{}\"}}", obs::json::escape_json(&s));
        let v = Value::parse(&doc).expect("escaped string parses");
        prop_assert_eq!(v.get("k").and_then(Value::as_str), Some(s.as_str()));
    }
}
