//! Lock-free per-thread span recording.
//!
//! Each thread owns a buffer of [`Event`]s guarded by an `AtomicBool`
//! claim flag (the same single-owner pattern as `core::par::ScratchArena`):
//! the owning thread claims it for the duration of a push, the drain in
//! [`crate::stop_trace`] claims it to `mem::take` the contents. There are
//! no locks on the recording path; the registry mutex is touched only
//! once per thread (registration) and once per drain.

use std::cell::{OnceCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Soft cap on buffered events per thread. `Begin` events past the cap
/// are dropped (and counted); `End` events for already-recorded spans are
/// always pushed so no recorded span is left unclosed.
const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

/// What an [`Event`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span was entered.
    Begin,
    /// A span was exited.
    End,
    /// An async/flow edge tied to a [`crate::ctx::TraceCtx`] id.
    Flow(FlowPhase),
}

/// Which chrome-trace async/flow phase a [`EventKind::Flow`] event maps
/// to. Async begin/end pairs draw one logical lane per context id; flow
/// send/recv pairs draw arrows between the threads that handed work off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowPhase {
    /// Async event begin (`ph:"b"`).
    AsyncBegin,
    /// Async event end (`ph:"e"`).
    AsyncEnd,
    /// Flow start: work leaves this thread (`ph:"s"`).
    Send,
    /// Flow finish: work lands on this thread (`ph:"f"`).
    Recv,
}

impl FlowPhase {
    /// The chrome-trace `ph` string for this phase.
    pub fn ph(self) -> &'static str {
        match self {
            FlowPhase::AsyncBegin => "b",
            FlowPhase::AsyncEnd => "e",
            FlowPhase::Send => "s",
            FlowPhase::Recv => "f",
        }
    }
}

/// One recorded span edge.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Begin, end, or async/flow edge.
    pub kind: EventKind,
    /// The span name passed to [`enter`].
    pub name: &'static str,
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_ns: u64,
    /// Context id for [`EventKind::Flow`] events; 0 for span edges.
    pub id: u64,
}

/// The events recorded by one thread, in program order.
#[derive(Clone, Debug)]
pub struct ThreadEvents {
    /// Stable trace-local thread id (registration order, 0-based).
    pub tid: u32,
    /// The OS thread name at registration time, if any.
    pub name: String,
    /// Recorded events, oldest first.
    pub events: Vec<Event>,
}

static TRACING: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (first call wins as time zero).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Is span recording currently enabled?
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

pub(crate) fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

pub(crate) fn dropped_and_reset() -> u64 {
    DROPPED.swap(0, Ordering::Relaxed)
}

struct ThreadBuf {
    tid: u32,
    name: String,
    busy: AtomicBool,
    events: UnsafeCell<Vec<Event>>,
}

// SAFETY: `events` is only touched while `busy` is held via CAS, which
// serializes the owning thread's pushes against the drain.
unsafe impl Send for ThreadBuf {}
unsafe impl Sync for ThreadBuf {}

impl ThreadBuf {
    /// Claim the buffer and run `f`; returns `None` if the claim could
    /// not be won within a short bounded spin (drain in progress).
    fn try_with<R>(&self, f: impl FnOnce(&mut Vec<Event>) -> R) -> Option<R> {
        for _ in 0..256 {
            if self
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS above grants exclusive access.
                let r = f(unsafe { &mut *self.events.get() });
                self.busy.store(false, Ordering::Release);
                return Some(r);
            }
            std::hint::spin_loop();
        }
        None
    }
}

thread_local! {
    static LOCAL: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
}

fn with_local<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                name: std::thread::current().name().unwrap_or("").to_string(),
                busy: AtomicBool::new(false),
                events: UnsafeCell::new(Vec::new()),
            });
            REGISTRY
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

/// Record a `Begin` edge; returns whether it was actually buffered.
fn record_begin(name: &'static str) -> bool {
    let ts_ns = now_ns();
    let pushed = with_local(|buf| {
        buf.try_with(|events| {
            if events.len() >= MAX_EVENTS_PER_THREAD {
                false
            } else {
                events.push(Event {
                    kind: EventKind::Begin,
                    name,
                    ts_ns,
                    id: 0,
                });
                true
            }
        })
        .unwrap_or(false)
    });
    if !pushed {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    pushed
}

/// Record an `End` edge for a span whose `Begin` was buffered. Ignores
/// the soft cap so recorded spans always close; if the buffer cannot be
/// claimed the drop is counted and the exporter synthesizes the close.
fn record_end(name: &'static str) {
    let ts_ns = now_ns();
    let pushed = with_local(|buf| {
        buf.try_with(|events| {
            events.push(Event {
                kind: EventKind::End,
                name,
                ts_ns,
                id: 0,
            });
        })
        .is_some()
    });
    if !pushed {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Record an async/flow edge for a context id on the calling thread.
/// One relaxed load when tracing is disabled; cap-checked like a `Begin`
/// when enabled (flow edges have no close to synthesize).
pub(crate) fn record_flow(phase: FlowPhase, name: &'static str, id: u64) {
    if !TRACING.load(Ordering::Relaxed) {
        return;
    }
    let ts_ns = now_ns();
    let pushed = with_local(|buf| {
        buf.try_with(|events| {
            if events.len() >= MAX_EVENTS_PER_THREAD {
                false
            } else {
                events.push(Event {
                    kind: EventKind::Flow(phase),
                    name,
                    ts_ns,
                    id,
                });
                true
            }
        })
        .unwrap_or(false)
    });
    if !pushed {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// RAII guard returned by [`enter`] / [`crate::span!`]. Closes the span
/// when dropped. If the `Begin` edge was not recorded (tracing disabled,
/// buffer full) the drop is free.
#[must_use = "a span guard closes its span when dropped; binding it to _ drops it immediately"]
pub struct SpanGuard {
    name: Option<&'static str>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            record_end(name);
        }
    }
}

/// Open a named span. Equivalent to the [`crate::span!`] macro.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !TRACING.load(Ordering::Relaxed) {
        return SpanGuard { name: None };
    }
    SpanGuard {
        name: record_begin(name).then_some(name),
    }
}

/// Drain every registered thread buffer, returning the recorded events
/// and the number of events dropped since the last drain.
pub(crate) fn drain_all() -> (Vec<ThreadEvents>, u64) {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::with_capacity(registry.len());
    for buf in registry.iter() {
        // The owner only holds the claim across a single push, so spin
        // until we win it.
        let events = loop {
            if let Some(ev) = buf.try_with(std::mem::take) {
                break ev;
            }
            std::thread::yield_now();
        };
        out.push(ThreadEvents {
            tid: buf.tid,
            name: buf.name.clone(),
            events,
        });
    }
    out.sort_by_key(|t| t.tid);
    (out, DROPPED.swap(0, Ordering::Relaxed))
}
