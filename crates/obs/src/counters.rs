//! Named monotonic counters and settable gauges.
//!
//! Counters are plain `AtomicU64`s behind a global enable flag: when
//! counting is off, [`Counter::add`] is a single relaxed load. The hot
//! kernels charge FLOP/byte amounts from `core::analysis`'s cost model
//! here, which is what lets the bench suite compute *achieved*
//! arithmetic intensity per cell instead of the modelled one.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);

/// Is counter accumulation currently enabled?
#[inline]
pub fn counters_enabled() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// Enable or disable counter accumulation; returns the previous state.
pub fn set_counters(on: bool) -> bool {
    COUNTING.swap(on, Ordering::Relaxed)
}

/// RAII scope that enables counters and restores the previous state on
/// drop. Obtain with [`counters_scope`].
pub struct CountersScope {
    prev: bool,
}

impl Drop for CountersScope {
    fn drop(&mut self) {
        set_counters(self.prev);
    }
}

/// Enable counters for the lifetime of the returned scope guard.
#[must_use = "counters are disabled again when the scope guard drops"]
pub fn counters_scope() -> CountersScope {
    CountersScope {
        prev: set_counters(true),
    }
}

/// A named monotonic counter. Increments are relaxed; totals are only
/// meaningful once concurrent writers have quiesced (e.g. after a
/// parallel region joins).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Create a counter (normally used via the statics in this module).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` if counting is enabled; one relaxed load otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if COUNTING.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A named settable gauge (last-write-wins), for values that are levels
/// rather than accumulations — e.g. the installed pool width.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// Create a gauge (normally used via the statics in this module).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Set the gauge (unconditional; gauges are cheap and rare).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Floating-point operations executed by kernels (cost-model accounting).
pub static FLOPS: Counter = Counter::new("kernel.flops");
/// Bytes moved by kernels per the paper's per-kernel cost model.
pub static BYTES: Counter = Counter::new("kernel.bytes");
/// Kernel entry points invoked.
pub static KERNEL_CALLS: Counter = Counter::new("kernel.calls");
/// Keys routed through the radix sort engine.
pub static SORT_KEYS: Counter = Counter::new("radix.keys_sorted");
/// HiCOO blocks materialized during COO→HiCOO conversion.
pub static CONVERT_BLOCKS: Counter = Counter::new("convert.blocks_built");
/// Supervisor retry attempts (after panic/timeout/invalid output).
pub static SUPERVISOR_RETRIES: Counter = Counter::new("supervisor.retries");
/// Output validations performed by the supervisor.
pub static VALIDATIONS: Counter = Counter::new("supervisor.validations");

/// Decomposition jobs submitted to a job service.
pub static JOB_SUBMITTED: Counter = Counter::new("job.submitted");
/// Decomposition jobs that reached a completed terminal state.
pub static JOB_COMPLETED: Counter = Counter::new("job.completed");
/// Decomposition jobs that reached a failed terminal state (typed error).
pub static JOB_FAILED: Counter = Counter::new("job.failed");
/// Checkpoints written after accepted job iterations.
pub static JOB_CHECKPOINTS: Counter = Counter::new("job.checkpoints");
/// Successful resume-from-checkpoint recoveries after a step fault.
pub static JOB_RESUMES: Counter = Counter::new("job.resumes");
/// Corrupted checkpoints detected (CRC/parse rejection) during recovery.
pub static JOB_CKPT_CORRUPT: Counter = Counter::new("job.checkpoint_corrupt");
/// Faults injected by a chaos harness (panics, hangs, corruptions, bursts).
pub static CHAOS_FAULTS: Counter = Counter::new("chaos.faults_injected");

/// Kernel inner loops executed through the SIMD backend's vector path.
pub static BACKEND_SIMD_CALLS: Counter = Counter::new("backend.simd_calls");
/// Kernel inner loops that ran the scalar path while a SIMD backend was
/// requested or active (explicit scalar dispatch or supervisor fallback).
pub static BACKEND_SCALAR_FALLBACKS: Counter = Counter::new("backend.scalar_fallbacks");
/// SIMD dispatches degraded to the portable lane path because the host
/// lacks the required vector ISA (e.g. forced Simd without AVX2).
pub static BACKEND_UNSUPPORTED_TARGET: Counter = Counter::new("backend.unsupported_target");

/// Connections accepted by the networked serving tier.
pub static NET_CONNECTIONS: Counter = Counter::new("net.connections");
/// Request frames decoded off the wire.
pub static NET_REQUESTS: Counter = Counter::new("net.requests");
/// Response frames written to the wire (completions and typed statuses).
pub static NET_RESPONSES: Counter = Counter::new("net.responses");
/// Protocol-level error frames written (corrupt/undecodable requests).
pub static NET_PROTOCOL_ERRORS: Counter = Counter::new("net.protocol_errors");
/// Payload bytes received in request frames.
pub static NET_BYTES_IN: Counter = Counter::new("net.bytes_in");
/// Payload bytes sent in response and error frames.
pub static NET_BYTES_OUT: Counter = Counter::new("net.bytes_out");

/// Worker threads installed in the process-wide pool (gauge).
pub static POOL_WORKERS: Gauge = Gauge::new("pool.workers");

/// All registered counters, in a stable order.
pub fn all() -> [&'static Counter; 23] {
    [
        &FLOPS,
        &BYTES,
        &KERNEL_CALLS,
        &SORT_KEYS,
        &CONVERT_BLOCKS,
        &SUPERVISOR_RETRIES,
        &VALIDATIONS,
        &JOB_SUBMITTED,
        &JOB_COMPLETED,
        &JOB_FAILED,
        &JOB_CHECKPOINTS,
        &JOB_RESUMES,
        &JOB_CKPT_CORRUPT,
        &CHAOS_FAULTS,
        &BACKEND_SIMD_CALLS,
        &BACKEND_SCALAR_FALLBACKS,
        &BACKEND_UNSUPPORTED_TARGET,
        &NET_CONNECTIONS,
        &NET_REQUESTS,
        &NET_RESPONSES,
        &NET_PROTOCOL_ERRORS,
        &NET_BYTES_IN,
        &NET_BYTES_OUT,
    ]
}

/// Snapshot every counter (and gauge) as `(name, value)` pairs.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = all().iter().map(|c| (c.name(), c.get())).collect();
    out.push((POOL_WORKERS.name(), POOL_WORKERS.get()));
    out
}

/// Reset every counter to zero (gauges are left alone).
pub fn reset_all() {
    for c in all() {
        c.reset();
    }
}
