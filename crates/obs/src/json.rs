//! A minimal JSON parser and a chrome-trace schema checker.
//!
//! The parser exists for two consumers: the chrome-trace validator used
//! by tests and CI (every `B` must have a matching `E`, pids/tids must be
//! consistent), and the `tenbench report` subcommand, which re-reads
//! sweep/trace artifacts emitted by the suite's hand-rolled writers.

use std::collections::HashMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved, lookups via [`Value::get`].
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let slice = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        slice
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {slice:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad codepoint".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    if (ch as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let slice =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(slice, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Render a float as a JSON number token.
///
/// JSON has no representation for `NaN` or the infinities, so every
/// hand-rolled writer in the workspace routes floats through here (or
/// [`json_f64_fixed`]): non-finite values become `null`, keeping the row
/// present with an explicit "no value" instead of producing a document
/// this module's own parser rejects. Finite values use `{:e}` notation,
/// which is valid JSON and round-trips exactly.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// [`json_f64`] with fixed decimal places for writers that want aligned
/// human-readable output (e.g. chrome-trace microsecond timestamps).
pub fn json_f64_fixed(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total events in `traceEvents` (including metadata).
    pub total_events: usize,
    /// Paired `B`/`E` duration events.
    pub duration_events: usize,
    /// Async/flow events (`b`/`e`/`n`/`s`/`t`/`f`).
    pub flow_events: usize,
    /// Distinct `(pid, tid)` lanes seen.
    pub threads: usize,
    /// Deepest observed span nesting.
    pub max_depth: usize,
}

/// Validate chrome-trace JSON emitted by [`crate::Trace::to_chrome_json`]
/// (or any conforming producer): every event carries `ph`/`pid`/`tid`,
/// `B`/`E` additionally carry `name` and a non-negative `ts`, per-lane
/// timestamps are non-decreasing, every `E` matches the innermost open
/// `B` by name, and every `B` is closed by end of stream. Async events
/// (`b`/`n`/`e`) and flow events (`s`/`t`/`f`) must carry `name`, a
/// non-negative `ts`, and an `id`; they tie lanes together by id and do
/// not participate in the `B`/`E` stack.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeSummary, String> {
    let doc = Value::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut duration_events = 0usize;
    let mut flow_events = 0usize;
    let mut max_depth = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))? as u64;
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        let lane = (pid, tid);
        match ph {
            "B" | "E" => {
                let name = ev
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: {ph} without name"))?;
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: {ph} without ts"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("event {i}: bad ts {ts}"));
                }
                let prev = last_ts.entry(lane).or_insert(ts);
                if ts < *prev {
                    return Err(format!(
                        "event {i}: ts {ts} went backwards on pid {pid} tid {tid}"
                    ));
                }
                *prev = ts;
                let stack = stacks.entry(lane).or_default();
                if ph == "B" {
                    stack.push(name.to_string());
                    max_depth = max_depth.max(stack.len());
                } else {
                    match stack.pop() {
                        Some(open) if open == name => {}
                        Some(open) => {
                            return Err(format!(
                                "event {i}: E \"{name}\" does not match open B \"{open}\""
                            ))
                        }
                        None => return Err(format!("event {i}: E \"{name}\" with no open B")),
                    }
                }
                duration_events += 1;
            }
            "b" | "e" | "n" | "s" | "t" | "f" => {
                // Async (b/n/e) and flow (s/t/f) events: named, timed,
                // id-keyed; outside the duration stack.
                ev.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: {ph} without name"))?;
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: {ph} without ts"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("event {i}: bad ts {ts}"));
                }
                ev.get("id")
                    .filter(|id| id.as_f64().is_some() || id.as_str().is_some())
                    .ok_or_else(|| format!("event {i}: {ph} without id"))?;
                flow_events += 1;
            }
            "M" | "C" | "I" | "X" => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unclosed B \"{open}\" on pid {pid} tid {tid} at end of stream"
            ));
        }
    }
    Ok(ChromeSummary {
        total_events: events.len(),
        duration_events,
        flow_events,
        threads: stacks.len(),
        max_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_round_trips_finite_values() {
        for v in [0.0, -0.0, 1.0, -1.5, 1e-300, 1e300, 0.1, 123456.789] {
            let tok = json_f64(v);
            let parsed = Value::parse(&tok).expect("token parses");
            assert_eq!(parsed.as_f64(), Some(v), "{tok}");
        }
    }

    #[test]
    fn json_f64_maps_non_finite_to_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(json_f64(v), "null");
            assert_eq!(json_f64_fixed(v, 3), "null");
            assert_eq!(Value::parse(&json_f64(v)), Ok(Value::Null));
        }
        assert_eq!(json_f64_fixed(1.23456, 3), "1.235");
    }
}
