//! Trace capture and exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::counters;
use crate::json::escape_json;
use crate::span::{self, Event, EventKind, ThreadEvents};

/// A drained capture: per-thread event streams plus a counter snapshot.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Per-thread event streams, ordered by trace-local thread id.
    pub threads: Vec<ThreadEvents>,
    /// Counter totals at [`stop_trace`] time.
    pub counters: Vec<(String, u64)>,
    /// Events dropped during capture (buffer full or claim contention).
    pub dropped_events: u64,
}

/// Begin a capture: clears stale buffers, resets counters, and enables
/// both span recording and counter accumulation.
pub fn start_trace() {
    // Discard anything recorded since the previous capture.
    let _ = span::drain_all();
    let _ = span::dropped_and_reset();
    counters::reset_all();
    counters::set_counters(true);
    span::set_tracing(true);
}

/// End a capture and return the recorded [`Trace`]. Disables span
/// recording and counter accumulation.
pub fn stop_trace() -> Trace {
    span::set_tracing(false);
    counters::set_counters(false);
    let (threads, dropped) = span::drain_all();
    Trace {
        threads,
        counters: counters::snapshot()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect(),
        dropped_events: dropped,
    }
}

/// Is a capture currently running?
pub fn is_tracing() -> bool {
    span::tracing_enabled()
}

/// Aggregate statistics for one span name (merged across threads).
#[derive(Clone, Debug)]
pub struct SpanAgg {
    /// Span name.
    pub name: String,
    /// Number of completed instances.
    pub count: u64,
    /// Total (inclusive) nanoseconds across instances.
    pub total_ns: u64,
    /// Self (exclusive of child spans) nanoseconds across instances.
    pub self_ns: u64,
}

/// One node of the per-thread profile tree.
struct ProfNode {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

/// Walk one thread's event stream with a stack, invoking `on_close` with
/// `(depth, path, duration_ns, self_ns)` for every completed span.
/// Unmatched `End`s are skipped; unclosed `Begin`s are closed at the
/// stream's final timestamp.
fn walk_thread(events: &[Event], mut on_close: impl FnMut(usize, &[&'static str], u64, u64)) {
    struct Frame {
        name: &'static str,
        start: u64,
        child_ns: u64,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut path: Vec<&'static str> = Vec::new();
    let last_ts = events.last().map(|e| e.ts_ns).unwrap_or(0);
    let mut close = |stack: &mut Vec<Frame>, path: &mut Vec<&'static str>, ts: u64| {
        let frame = stack.pop().expect("close with empty stack");
        path.pop();
        let dur = ts.saturating_sub(frame.start);
        let self_ns = dur.saturating_sub(frame.child_ns);
        path.push(frame.name);
        on_close(stack.len(), path, dur, self_ns);
        path.pop();
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += dur;
        }
    };
    for ev in events {
        match ev.kind {
            EventKind::Begin => {
                stack.push(Frame {
                    name: ev.name,
                    start: ev.ts_ns,
                    child_ns: 0,
                });
                path.push(ev.name);
            }
            EventKind::End => {
                if stack.last().is_some_and(|f| f.name == ev.name) {
                    close(&mut stack, &mut path, ev.ts_ns);
                }
                // Otherwise: an orphan End (its Begin was dropped, or it
                // straddles a capture boundary) — ignore it.
            }
            // Flow edges carry no duration; they render as async/flow
            // chrome events and are invisible to the span tree.
            EventKind::Flow(_) => {}
        }
    }
    while !stack.is_empty() {
        close(&mut stack, &mut path, last_ts);
    }
}

impl Trace {
    /// Render as chrome-trace JSON (the "Trace Event Format" array form
    /// wrapped in an object), loadable in `chrome://tracing` / Perfetto.
    ///
    /// Every emitted `B` has a matching `E` on the same `(pid, tid)`:
    /// orphan `End`s are skipped and unclosed `Begin`s are closed
    /// synthetically at the thread's final timestamp.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |out: &mut String, line: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        for t in &self.threads {
            let label = if t.name.is_empty() {
                format!("thread-{}", t.tid)
            } else {
                t.name.clone()
            };
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                    t.tid,
                    escape_json(&label)
                ),
            );
            // Re-walk with a stack so the emitted stream is well formed
            // even if the raw one has orphan edges.
            let mut open: Vec<&'static str> = Vec::new();
            let last_ts = t.events.last().map(|e| e.ts_ns).unwrap_or(0);
            for ev in &t.events {
                match ev.kind {
                    EventKind::Begin => {
                        open.push(ev.name);
                        push(
                            &mut out,
                            format!(
                                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\",\"cat\":\"tenbench\"}}",
                                t.tid,
                                crate::json::json_f64_fixed(ev.ts_ns as f64 / 1000.0, 3),
                                escape_json(ev.name)
                            ),
                        );
                    }
                    EventKind::End => {
                        if open.last() == Some(&ev.name) {
                            open.pop();
                            push(
                                &mut out,
                                format!(
                                    "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\"}}",
                                    t.tid,
                                    crate::json::json_f64_fixed(ev.ts_ns as f64 / 1000.0, 3),
                                    escape_json(ev.name)
                                ),
                            );
                        }
                    }
                    EventKind::Flow(phase) => {
                        // Async/flow events: same lane, tied together by
                        // the context id. Flow-finish binds to the
                        // *enclosing* slice (`bp:"e"`), the rendering that
                        // draws the arrow into the batch that ran it.
                        let bp = match phase {
                            crate::span::FlowPhase::Recv => ",\"bp\":\"e\"",
                            _ => "",
                        };
                        push(
                            &mut out,
                            format!(
                                "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\",\"cat\":\"tenbench.flow\",\"id\":{}{}}}",
                                phase.ph(),
                                t.tid,
                                crate::json::json_f64_fixed(ev.ts_ns as f64 / 1000.0, 3),
                                escape_json(ev.name),
                                ev.id,
                                bp
                            ),
                        );
                    }
                }
            }
            while let Some(name) = open.pop() {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\"}}",
                        t.tid,
                        crate::json::json_f64_fixed(last_ts as f64 / 1000.0, 3),
                        escape_json(name)
                    ),
                );
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape_json(name), value);
        }
        let _ = write!(out, ",\"dropped_events\":{}", self.dropped_events);
        out.push_str("}}\n");
        out
    }

    /// Per-name aggregates (count, total, self) merged across threads.
    pub fn span_aggregates(&self) -> Vec<SpanAgg> {
        let mut by_name: BTreeMap<&'static str, ProfNode> = BTreeMap::new();
        for t in &self.threads {
            walk_thread(&t.events, |_, path, dur, self_ns| {
                let node = by_name.entry(path[path.len() - 1]).or_insert(ProfNode {
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                });
                node.count += 1;
                node.total_ns += dur;
                node.self_ns += self_ns;
            });
        }
        by_name
            .into_iter()
            .map(|(name, n)| SpanAgg {
                name: name.to_string(),
                count: n.count,
                total_ns: n.total_ns,
                self_ns: n.self_ns,
            })
            .collect()
    }

    /// The trace's span *structure*: completed-span counts keyed by full
    /// path (`"a/b/c"`), merged across threads. Structure — unlike
    /// timings or thread assignment — is deterministic for phase-level
    /// instrumentation regardless of thread count, which the test suite
    /// asserts.
    pub fn span_structure(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for t in &self.threads {
            walk_thread(&t.events, |_, path, _, _| {
                *out.entry(path.join("/")).or_insert(0) += 1;
            });
        }
        out
    }

    /// Render a plain-text hierarchical profile: per thread, one line per
    /// distinct span path with call count, total and self time.
    pub fn profile(&self) -> String {
        let mut out = String::new();
        for t in &self.threads {
            if t.events.is_empty() {
                continue;
            }
            let label = if t.name.is_empty() {
                format!("thread-{}", t.tid)
            } else {
                t.name.clone()
            };
            let _ = writeln!(out, "== tid {} ({label}) ==", t.tid);
            // Aggregate by path, remembering first-seen order of paths so
            // the tree prints parents before children.
            let mut order: Vec<String> = Vec::new();
            let mut nodes: BTreeMap<String, ProfNode> = BTreeMap::new();
            let mut depths: BTreeMap<String, usize> = BTreeMap::new();
            walk_thread(&t.events, |depth, path, dur, self_ns| {
                let key = path.join("/");
                if !nodes.contains_key(&key) {
                    order.push(key.clone());
                    depths.insert(key.clone(), depth);
                }
                let node = nodes.entry(key).or_insert(ProfNode {
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                });
                node.count += 1;
                node.total_ns += dur;
                node.self_ns += self_ns;
            });
            // Children close before parents, so sorting paths
            // lexicographically gives a stable readable tree.
            order.sort();
            let _ = writeln!(
                out,
                "  {:<48} {:>8} {:>12} {:>12}",
                "span", "calls", "total", "self"
            );
            for key in &order {
                let node = &nodes[key];
                let depth = depths[key];
                let leaf = key.rsplit('/').next().unwrap_or(key);
                let _ = writeln!(
                    out,
                    "  {:<48} {:>8} {:>12} {:>12}",
                    format!("{}{}", "  ".repeat(depth), leaf),
                    node.count,
                    fmt_ns(node.total_ns),
                    fmt_ns(node.self_ns),
                );
            }
        }
        if self.dropped_events > 0 {
            let _ = writeln!(out, "(dropped events: {})", self.dropped_events);
        }
        if out.is_empty() {
            out.push_str("(empty trace)\n");
        }
        out
    }
}

/// Human-readable duration from nanoseconds.
pub(crate) fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}
