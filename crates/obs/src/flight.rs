//! Always-on flight recorder: per-thread rings of recent causal events,
//! snapshotted into a JSON dump when a fault is recorded.
//!
//! Unlike span capture (off unless a trace is running), the recorder is
//! **always on**: every thread that calls [`note`] owns a fixed-size ring
//! of the last [`RING_CAPACITY`] events (admissions, batch claims, cache
//! hits/misses/evictions, checkpoint writes, retries, fallbacks, steals,
//! faults). A healthy-path record is one uncontended CAS claim plus a
//! slot store — no locks, no allocation after the ring exists. When the
//! supervisor records a panic/timeout/invalid-output, or checkpoint
//! recovery detects corruption, [`dump`] snapshots *every* thread's ring
//! into a JSON file under the configured dump directory (set via
//! `--flight-dump-dir` on the CLI), so the fault ships with the last-N
//! events of context that explain it.
//!
//! Rings mirror the claim discipline of [`crate::span`]'s buffers: an
//! `AtomicBool` CAS serializes the owner's push against a dump's
//! snapshot. A push that loses the claim (a dump is copying this ring)
//! increments a drop counter instead of spinning unboundedly.

use std::cell::{OnceCell, UnsafeCell};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::ctx;
use crate::json::{escape_json, Value};
use crate::span::now_ns;

/// Events kept per thread; a power of two so the ring index is a mask.
pub const RING_CAPACITY: usize = 256;

/// What a [`FlightEvent`] records. Kept deliberately flat (no payload
/// strings) so a record is a fixed-size store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlightKind {
    /// A request or job was admitted into a queue.
    Admit,
    /// An admission was rejected (queue full / shutting down).
    Reject,
    /// A queued request was shed because its deadline expired.
    Shed,
    /// A worker claimed a batch of queued same-key requests.
    BatchClaim,
    /// Prepared-format cache hit.
    CacheHit,
    /// Prepared-format cache miss (a prepare follows).
    CacheMiss,
    /// A cache entry was evicted to fit the byte budget.
    CacheEvict,
    /// A supervised execution attempt began.
    ExecBegin,
    /// A supervised execution attempt completed OK.
    ExecOk,
    /// The supervisor retried after a fault.
    Retry,
    /// The supervisor fell back (backend or strategy demotion).
    Fallback,
    /// A supervised attempt panicked.
    Panic,
    /// A supervised attempt tripped the watchdog.
    Timeout,
    /// A supervised attempt produced invalid output.
    InvalidOutput,
    /// A checkpoint was written after an accepted iteration.
    CkptWrite,
    /// A checkpoint failed CRC/parse validation during recovery.
    CkptCorrupt,
    /// A job resumed from a valid checkpoint.
    Resume,
    /// A job reinitialized after exhausting its checkpoint ring.
    Reinit,
    /// A pool worker executed a chunk stolen from another lane's region.
    Steal,
}

impl FlightKind {
    /// Stable lowercase name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Admit => "admit",
            FlightKind::Reject => "reject",
            FlightKind::Shed => "shed",
            FlightKind::BatchClaim => "batch_claim",
            FlightKind::CacheHit => "cache_hit",
            FlightKind::CacheMiss => "cache_miss",
            FlightKind::CacheEvict => "cache_evict",
            FlightKind::ExecBegin => "exec_begin",
            FlightKind::ExecOk => "exec_ok",
            FlightKind::Retry => "retry",
            FlightKind::Fallback => "fallback",
            FlightKind::Panic => "panic",
            FlightKind::Timeout => "timeout",
            FlightKind::InvalidOutput => "invalid_output",
            FlightKind::CkptWrite => "ckpt_write",
            FlightKind::CkptCorrupt => "ckpt_corrupt",
            FlightKind::Resume => "resume",
            FlightKind::Reinit => "reinit",
            FlightKind::Steal => "steal",
        }
    }
}

/// One recorded flight event.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The causal context id it happened to (0 = none installed).
    pub ctx: u64,
    /// One kind-specific detail (queue depth, iteration, bytes, ...).
    pub arg: u64,
}

struct Ring {
    tid: u64,
    name: String,
    busy: AtomicBool,
    /// (next write index, slots); index only grows, slot = index & mask.
    state: UnsafeCell<(u64, Box<[FlightEvent]>)>,
}

// SAFETY: `state` is only touched while `busy` is held via CAS, which
// serializes the owning thread's pushes against a dump's snapshot.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn try_with<R>(&self, f: impl FnOnce(&mut (u64, Box<[FlightEvent]>)) -> R) -> Option<R> {
        for _ in 0..256 {
            if self
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS above grants exclusive access.
                let r = f(unsafe { &mut *self.state.get() });
                self.busy.store(false, Ordering::Release);
                return Some(r);
            }
            std::hint::spin_loop();
        }
        None
    }
}

static NEXT_RING_TID: AtomicU64 = AtomicU64::new(0);
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

thread_local! {
    static LOCAL: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

fn with_local<R>(f: impl FnOnce(&Ring) -> R) -> R {
    LOCAL.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(Ring {
                tid: NEXT_RING_TID.fetch_add(1, Ordering::Relaxed),
                name: std::thread::current().name().unwrap_or("").to_string(),
                busy: AtomicBool::new(false),
                state: UnsafeCell::new((
                    0,
                    vec![
                        FlightEvent {
                            ts_ns: 0,
                            kind: FlightKind::Admit,
                            ctx: 0,
                            arg: 0,
                        };
                        RING_CAPACITY
                    ]
                    .into_boxed_slice(),
                )),
            });
            RINGS
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            ring
        });
        f(ring)
    })
}

/// Record an event in this thread's ring, charging it to the installed
/// [`crate::ctx::TraceCtx`] (0 if none). Always on; the healthy-path
/// cost is one uncontended CAS plus a slot store.
#[inline]
pub fn note(kind: FlightKind, arg: u64) {
    note_ctx(kind, ctx::current_id(), arg);
}

/// Record an event charged to an explicit context id (for call sites that
/// carry the ctx in a struct rather than the thread-local).
pub fn note_ctx(kind: FlightKind, ctx: u64, arg: u64) {
    let ts_ns = now_ns();
    let pushed = with_local(|ring| {
        ring.try_with(|(head, slots)| {
            let slot = (*head as usize) & (RING_CAPACITY - 1);
            slots[slot] = FlightEvent {
                ts_ns,
                kind,
                ctx,
                arg,
            };
            *head += 1;
        })
        .is_some()
    });
    if !pushed {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Events recorded by one thread, oldest first.
#[derive(Clone, Debug)]
pub struct ThreadFlight {
    /// Recorder-local thread id (registration order).
    pub tid: u64,
    /// OS thread name at registration, if any.
    pub name: String,
    /// Total events ever recorded by this thread (≥ `events.len()`).
    pub recorded: u64,
    /// The retained tail of the ring, oldest first.
    pub events: Vec<FlightEvent>,
}

/// Snapshot every thread's ring without clearing anything. Threads whose
/// rings are empty are skipped.
pub fn snapshot() -> Vec<ThreadFlight> {
    let rings = RINGS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::with_capacity(rings.len());
    for ring in rings.iter() {
        // The owner holds the claim only across one slot store; spin
        // until the snapshot wins it.
        let taken = loop {
            if let Some(t) = ring.try_with(|(head, slots)| {
                let kept = (*head).min(RING_CAPACITY as u64);
                let start = *head - kept;
                let events: Vec<FlightEvent> = (start..*head)
                    .map(|i| slots[(i as usize) & (RING_CAPACITY - 1)])
                    .collect();
                (*head, events)
            }) {
                break t;
            }
            std::thread::yield_now();
        };
        let (recorded, events) = taken;
        if recorded == 0 {
            continue;
        }
        out.push(ThreadFlight {
            tid: ring.tid,
            name: ring.name.clone(),
            recorded,
            events,
        });
    }
    out.sort_by_key(|t| t.tid);
    out
}

/// Events dropped because a push lost its claim to a concurrent dump.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Configure (or clear) the directory fault dumps are written into. The
/// directory is created eagerly so a misconfigured path fails at startup,
/// not at the first fault.
pub fn set_dump_dir(dir: Option<PathBuf>) -> std::io::Result<()> {
    if let Some(d) = &dir {
        std::fs::create_dir_all(d)?;
    }
    *DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir;
    Ok(())
}

/// The currently configured dump directory, if any.
pub fn dump_dir() -> Option<PathBuf> {
    DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Serialize a snapshot of every ring as a flight-dump JSON document.
pub fn dump_json(reason: &str, ctx: u64, detail: &str) -> String {
    let threads = snapshot();
    let mut out = String::from("{\"flight_dump\":1,");
    let _ = write!(
        out,
        "\"reason\":\"{}\",\"ctx\":{},\"detail\":\"{}\",\"ts_ns\":{},\"ring_capacity\":{},\"dropped\":{},",
        escape_json(reason),
        ctx,
        escape_json(detail),
        now_ns(),
        RING_CAPACITY,
        dropped()
    );
    out.push_str("\"threads\":[");
    for (i, t) in threads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"tid\":{},\"name\":\"{}\",\"recorded\":{},\"events\":[",
            t.tid,
            escape_json(&t.name),
            t.recorded
        );
        for (j, ev) in t.events.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"ts_ns\":{},\"kind\":\"{}\",\"ctx\":{},\"arg\":{}}}",
                ev.ts_ns,
                ev.kind.name(),
                ev.ctx,
                ev.arg
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Record the fault in the caller's ring and, if a dump directory is
/// configured, write a JSON dump of every thread's recent events.
/// Returns the written path (None when no directory is configured; a
/// write failure is reported on stderr rather than panicking — the dump
/// is diagnostic cargo riding on a fault path that must stay survivable).
pub fn dump(reason: &str, fault_kind: FlightKind, ctx: u64, detail: &str) -> Option<PathBuf> {
    note_ctx(fault_kind, ctx, 0);
    let dir = dump_dir()?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("flight-{seq:04}-{reason}.json"));
    let json = dump_json(reason, ctx, detail);
    match std::fs::write(&path, json) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("flight recorder: failed to write {}: {e}", path.display());
            None
        }
    }
}

/// Summary of a validated flight dump.
#[derive(Clone, Debug)]
pub struct FlightDumpSummary {
    /// Fault reason recorded by the dumper.
    pub reason: String,
    /// The faulting request/job context id (0 if none was installed).
    pub ctx: u64,
    /// Free-form fault detail.
    pub detail: String,
    /// Threads with at least one retained event.
    pub threads: usize,
    /// Total retained events across threads.
    pub events: usize,
    /// Retained events charged to the faulting context id.
    pub ctx_events: usize,
}

/// Is this JSON document a flight dump (vs e.g. a chrome trace)?
pub fn is_flight_dump(doc: &Value) -> bool {
    doc.get("flight_dump").is_some()
}

/// Validate a flight-dump JSON document: required top-level fields, and
/// for every thread a name plus events whose `ts_ns` are non-decreasing
/// and whose kinds are non-empty strings.
pub fn validate_flight_dump(text: &str) -> Result<FlightDumpSummary, String> {
    let doc = Value::parse(text)?;
    if !is_flight_dump(&doc) {
        return Err("missing flight_dump marker".into());
    }
    let reason = doc
        .get("reason")
        .and_then(Value::as_str)
        .ok_or("missing reason")?
        .to_string();
    let ctx = doc
        .get("ctx")
        .and_then(Value::as_f64)
        .ok_or("missing ctx")? as u64;
    let detail = doc
        .get("detail")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    let threads = doc
        .get("threads")
        .and_then(Value::as_arr)
        .ok_or("missing threads array")?;
    let mut events = 0usize;
    let mut ctx_events = 0usize;
    for (i, t) in threads.iter().enumerate() {
        t.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("thread {i}: missing name"))?;
        let evs = t
            .get("events")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("thread {i}: missing events"))?;
        let mut prev = 0.0f64;
        for (j, ev) in evs.iter().enumerate() {
            let ts = ev
                .get("ts_ns")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("thread {i} event {j}: missing ts_ns"))?;
            if ts < prev {
                return Err(format!("thread {i} event {j}: ts_ns went backwards"));
            }
            prev = ts;
            let kind = ev
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("thread {i} event {j}: missing kind"))?;
            if kind.is_empty() {
                return Err(format!("thread {i} event {j}: empty kind"));
            }
            let ev_ctx = ev
                .get("ctx")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("thread {i} event {j}: missing ctx"))?
                as u64;
            if ctx != 0 && ev_ctx == ctx {
                ctx_events += 1;
            }
            events += 1;
        }
    }
    Ok(FlightDumpSummary {
        reason,
        ctx,
        detail,
        threads: threads.len(),
        events,
        ctx_events,
    })
}

/// Pretty-print a validated dump: header plus a per-thread table of the
/// retained events, newest last, the faulting context's rows marked.
pub fn render_flight_dump(text: &str) -> Result<String, String> {
    let summary = validate_flight_dump(text)?;
    let doc = Value::parse(text)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight dump: reason={} ctx={} detail={:?}",
        summary.reason, summary.ctx, summary.detail
    );
    let _ = writeln!(
        out,
        "{} thread(s), {} retained event(s), {} charged to the faulting ctx",
        summary.threads, summary.events, summary.ctx_events
    );
    let threads = doc.get("threads").and_then(Value::as_arr).unwrap();
    for t in threads {
        let name = t.get("name").and_then(Value::as_str).unwrap_or("");
        let tid = t.get("tid").and_then(Value::as_f64).unwrap_or(-1.0) as i64;
        let recorded = t.get("recorded").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let evs = t.get("events").and_then(Value::as_arr).unwrap();
        let _ = writeln!(
            out,
            "== tid {tid} ({}) — {} retained of {recorded} recorded ==",
            if name.is_empty() { "unnamed" } else { name },
            evs.len()
        );
        for ev in evs {
            let ts = ev.get("ts_ns").and_then(Value::as_f64).unwrap_or(0.0);
            let kind = ev.get("kind").and_then(Value::as_str).unwrap_or("");
            let ctx = ev.get("ctx").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            let arg = ev.get("arg").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            let mark = if summary.ctx != 0 && ctx == summary.ctx {
                "*"
            } else {
                " "
            };
            let _ = writeln!(
                out,
                " {mark} {:>14.3} ms  {kind:<16} ctx={ctx:<8} arg={arg}",
                ts / 1e6
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_capacity_events() {
        let total = RING_CAPACITY as u64 + 37;
        for i in 0..total {
            note_ctx(FlightKind::Admit, 999_001, i);
        }
        let snap = snapshot();
        let mine = snap
            .iter()
            .find(|t| t.events.iter().any(|e| e.ctx == 999_001))
            .expect("own ring in snapshot");
        assert!(mine.recorded >= total);
        assert_eq!(mine.events.len(), RING_CAPACITY);
        // The newest event survives; args are monotone within our runs.
        let last = mine.events.iter().rev().find(|e| e.ctx == 999_001).unwrap();
        assert_eq!(last.arg, total - 1);
    }

    #[test]
    fn dump_json_validates_and_renders() {
        note_ctx(FlightKind::CkptWrite, 999_002, 3);
        note_ctx(FlightKind::Panic, 999_002, 0);
        let json = dump_json("panic", 999_002, "step panicked: boom");
        let summary = validate_flight_dump(&json).expect("dump validates");
        assert_eq!(summary.reason, "panic");
        assert_eq!(summary.ctx, 999_002);
        assert!(summary.ctx_events >= 2, "faulting ctx events retained");
        let text = render_flight_dump(&json).expect("dump renders");
        assert!(text.contains("ckpt_write"));
        assert!(text.contains("reason=panic"));
        // A chrome trace is not a flight dump.
        assert!(validate_flight_dump("{\"traceEvents\":[]}").is_err());
    }
}
