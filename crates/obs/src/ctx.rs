//! Request-scoped causal trace contexts.
//!
//! A [`TraceCtx`] names one unit of externally-visible work — a serve
//! request or a decomposition job — with a process-unique id plus the id
//! of the context that caused it (0 for roots). The current context lives
//! in a thread-local and is *explicitly* propagated across thread
//! boundaries (watchdog threads, pool workers) by capturing
//! [`current`] before the spawn and [`install`]ing it inside the spawned
//! closure: thread-locals do not inherit, so nothing propagates by
//! accident.
//!
//! While a span capture is running, the context also drives chrome-trace
//! **async/flow events** ([`async_begin`]/[`async_end`] and
//! [`flow_send`]/[`flow_recv`]) keyed on the context id, so one request's
//! lifecycle renders as a single connected lane across every thread that
//! touched it. When tracing is off, each of these calls is one relaxed
//! atomic load.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::span::{self, FlowPhase};

/// Ids start at 1 so that 0 unambiguously means "no context".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The causal identity of one request or job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Process-unique id (never 0).
    pub id: u64,
    /// Id of the causing context, or 0 for a root.
    pub parent: u64,
    /// What kind of work this names (`"request"`, `"job"`, ...).
    pub kind: &'static str,
}

impl TraceCtx {
    /// Mint a fresh root context of the given kind.
    pub fn mint(kind: &'static str) -> TraceCtx {
        TraceCtx {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            parent: 0,
            kind,
        }
    }

    /// Mint a child context caused by `self`.
    pub fn child(&self, kind: &'static str) -> TraceCtx {
        TraceCtx {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            parent: self.id,
            kind,
        }
    }

    /// Mint a context whose parent arrived as a raw id — the shape of a
    /// trace id carried over the wire in a frame header, where the
    /// originating [`TraceCtx`] lives in another process. A parent of 0
    /// mints a root.
    pub fn mint_with_parent(kind: &'static str, parent: u64) -> TraceCtx {
        TraceCtx {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            parent,
            kind,
        }
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The context installed on this thread, if any.
#[inline]
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(Cell::get)
}

/// The id of the installed context, or 0.
#[inline]
pub fn current_id() -> u64 {
    CURRENT.with(Cell::get).map(|c| c.id).unwrap_or(0)
}

/// RAII guard restoring the previously-installed context on drop.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Install `ctx` as this thread's current context until the guard drops.
pub fn install(ctx: TraceCtx) -> CtxGuard {
    CtxGuard {
        prev: CURRENT.with(|c| c.replace(Some(ctx))),
    }
}

/// Install an *optional* context (a no-op guard for `None`), the common
/// shape when relaying a captured `current()` across a thread boundary.
pub fn install_opt(ctx: Option<TraceCtx>) -> CtxGuard {
    match ctx {
        Some(ctx) => install(ctx),
        None => CtxGuard {
            prev: CURRENT.with(Cell::get),
        },
    }
}

/// Record a chrome-trace async-begin (`ph:"b"`) for `ctx` on this thread.
#[inline]
pub fn async_begin(name: &'static str, ctx: TraceCtx) {
    span::record_flow(FlowPhase::AsyncBegin, name, ctx.id);
}

/// Record a chrome-trace async-end (`ph:"e"`) for `ctx` on this thread.
#[inline]
pub fn async_end(name: &'static str, ctx: TraceCtx) {
    span::record_flow(FlowPhase::AsyncEnd, name, ctx.id);
}

/// Record a flow-send (`ph:"s"`): work for `ctx` leaves this thread.
#[inline]
pub fn flow_send(name: &'static str, ctx: TraceCtx) {
    span::record_flow(FlowPhase::Send, name, ctx.id);
}

/// Record a flow-receive (`ph:"f"`): work for `ctx` lands on this thread.
#[inline]
pub fn flow_recv(name: &'static str, ctx: TraceCtx) {
    span::record_flow(FlowPhase::Recv, name, ctx.id);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_unique_and_child_links_parent() {
        let a = TraceCtx::mint("request");
        let b = TraceCtx::mint("request");
        assert_ne!(a.id, b.id);
        assert_eq!(a.parent, 0);
        let c = a.child("job");
        assert_eq!(c.parent, a.id);
        assert_ne!(c.id, a.id);
        // Wire-carried parent ids link the same way, and 0 mints a root.
        let d = TraceCtx::mint_with_parent("request", c.id);
        assert_eq!(d.parent, c.id);
        assert_ne!(d.id, c.id);
        assert_eq!(TraceCtx::mint_with_parent("request", 0).parent, 0);
    }

    #[test]
    fn install_nests_and_restores() {
        assert_eq!(current(), None);
        let a = TraceCtx::mint("request");
        let b = TraceCtx::mint("request");
        {
            let _g = install(a);
            assert_eq!(current_id(), a.id);
            {
                let _g2 = install(b);
                assert_eq!(current_id(), b.id);
            }
            assert_eq!(current_id(), a.id);
            {
                let _g3 = install_opt(None);
                assert_eq!(current_id(), a.id);
            }
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn ctx_does_not_cross_threads_implicitly() {
        let a = TraceCtx::mint("request");
        let _g = install(a);
        let seen = std::thread::spawn(current_id).join().unwrap();
        assert_eq!(seen, 0, "thread-locals must not inherit");
        let captured = current();
        let seen = std::thread::spawn(move || {
            let _g = install_opt(captured);
            current_id()
        })
        .join()
        .unwrap();
        assert_eq!(seen, a.id, "explicit relay must");
    }
}
