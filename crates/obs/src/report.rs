//! Machine-readable metrics report.
//!
//! A [`MetricsReport`] condenses one capture — counter totals, per-span
//! aggregates, and an optional pool-telemetry snapshot supplied by the
//! embedder (the `bench` crate glues the rayon shim's `pool_stats()` in
//! here) — into a structure the supervisor can merge into its
//! `SweepReport` JSON and `tenbench report` can render.

use std::fmt::Write as _;

use crate::json::escape_json;
use crate::trace::{fmt_ns, SpanAgg, Trace};

/// Telemetry for one pool participant.
#[derive(Clone, Debug, Default)]
pub struct WorkerSnap {
    /// Worker index (spawn order); `usize::MAX` labels the caller lane.
    pub worker: usize,
    /// Nanoseconds spent executing region chunks.
    pub busy_ns: u64,
    /// Nanoseconds spent parked waiting for work.
    pub park_ns: u64,
    /// Regions this participant joined.
    pub regions: u64,
    /// Chunks this participant executed.
    pub chunks: u64,
}

/// A snapshot of the process-wide pool's telemetry.
#[derive(Clone, Debug, Default)]
pub struct PoolSnapshot {
    /// Per-worker telemetry (spawned workers, then the caller lane).
    pub workers: Vec<WorkerSnap>,
    /// Parallel regions executed.
    pub regions: u64,
    /// Total chunks scheduled across regions.
    pub chunks_total: u64,
    /// Chunks executed by a participant other than the submitting caller
    /// (i.e. stolen from the region's shared chunk counter).
    pub chunks_stolen: u64,
}

/// One capture's metrics in machine-readable form.
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    /// Counter/gauge totals at capture end.
    pub counters: Vec<(String, u64)>,
    /// Per-span aggregates merged across threads, sorted by name.
    pub spans: Vec<SpanAgg>,
    /// Pool telemetry, when the embedder supplied it.
    pub pool: Option<PoolSnapshot>,
    /// Events dropped during the capture.
    pub dropped_events: u64,
}

impl MetricsReport {
    /// Build a report from a drained trace (no pool snapshot; attach one
    /// via the `pool` field if available).
    pub fn from_trace(trace: &Trace) -> MetricsReport {
        MetricsReport {
            counters: trace.counters.clone(),
            spans: trace.span_aggregates(),
            pool: None,
            dropped_events: trace.dropped_events,
        }
    }

    /// Serialize to a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape_json(name), value);
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                escape_json(&s.name),
                s.count,
                s.total_ns,
                s.self_ns
            );
        }
        out.push_str("],");
        if let Some(pool) = &self.pool {
            out.push_str("\"pool\":{\"workers\":[");
            for (i, w) in pool.workers.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let worker = if w.worker == usize::MAX {
                    "\"caller\"".to_string()
                } else {
                    w.worker.to_string()
                };
                let _ = write!(
                    out,
                    "{{\"worker\":{},\"busy_ns\":{},\"park_ns\":{},\"regions\":{},\"chunks\":{}}}",
                    worker, w.busy_ns, w.park_ns, w.regions, w.chunks
                );
            }
            let _ = write!(
                out,
                "],\"regions\":{},\"chunks_total\":{},\"chunks_stolen\":{}}},",
                pool.regions, pool.chunks_total, pool.chunks_stolen
            );
        }
        let _ = write!(out, "\"dropped_events\":{}", self.dropped_events);
        out.push('}');
        out
    }

    /// Render a human-readable summary (counters, top spans by total
    /// time, pool utilization).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
        let mut spans = self.spans.clone();
        spans.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
        if !spans.is_empty() {
            out.push_str("spans (by total time):\n");
            let _ = writeln!(
                out,
                "  {:<32} {:>8} {:>12} {:>12}",
                "name", "calls", "total", "self"
            );
            for s in spans.iter().take(20) {
                let _ = writeln!(
                    out,
                    "  {:<32} {:>8} {:>12} {:>12}",
                    s.name,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.self_ns)
                );
            }
        }
        if let Some(pool) = &self.pool {
            let _ = writeln!(
                out,
                "pool: {} regions, {} chunks ({} stolen)",
                pool.regions, pool.chunks_total, pool.chunks_stolen
            );
            for w in &pool.workers {
                let total = w.busy_ns + w.park_ns;
                let util = if total > 0 {
                    100.0 * w.busy_ns as f64 / total as f64
                } else {
                    0.0
                };
                let lane = if w.worker == usize::MAX {
                    "caller".to_string()
                } else {
                    format!("worker {}", w.worker)
                };
                let _ = writeln!(
                    out,
                    "  {:<10} busy {:>12} park {:>12} ({:>5.1}% busy), {} regions, {} chunks",
                    lane,
                    fmt_ns(w.busy_ns),
                    fmt_ns(w.park_ns),
                    util,
                    w.regions,
                    w.chunks
                );
            }
        }
        if self.dropped_events > 0 {
            let _ = writeln!(out, "dropped events: {}", self.dropped_events);
        }
        out
    }
}
