//! In-process tracing and metrics for the tenbench suite.
//!
//! The crate has three layers:
//!
//! 1. **Span recording** ([`span`]): RAII guards created with
//!    [`span!("name")`](crate::span!) push `Begin`/`End` events into a
//!    per-thread buffer. A *disabled* span costs one relaxed atomic load;
//!    an enabled one costs two `Vec` pushes and two monotonic clock reads.
//!    Buffers register themselves in a process-wide sink and are drained
//!    by [`stop_trace`].
//! 2. **Counters** ([`counters`]): named monotonic `AtomicU64` counters
//!    (FLOPs, bytes moved, retries, ...) and settable gauges. Disabled
//!    counters are likewise a single relaxed load.
//! 3. **Exporters** ([`trace`], [`report`]): a drained [`Trace`] renders
//!    to chrome-trace JSON (loadable in `chrome://tracing` / Perfetto), a
//!    plain-text hierarchical profile (self/total time per span, per
//!    thread), or a machine-readable [`report::MetricsReport`].
//! 4. **Causal tracing** ([`ctx`], [`flight`], [`hist`]): request/job
//!    [`TraceCtx`] ids explicitly relayed across thread boundaries and
//!    rendered as chrome-trace async/flow lanes; an always-on per-thread
//!    flight-recorder ring snapshotted into a JSON dump when a fault is
//!    recorded; and a bounded-memory log-bucketed latency histogram.
//!
//! The crate deliberately has no dependencies so that every other crate
//! in the workspace — including the vendored `rayon` shim — can
//! instrument itself without creating an import cycle.
//!
//! # Quick start
//!
//! ```
//! tenbench_obs::start_trace();
//! {
//!     let _outer = tenbench_obs::span!("outer");
//!     let _inner = tenbench_obs::span!("inner");
//!     tenbench_obs::counters::FLOPS.add(128);
//! }
//! let trace = tenbench_obs::stop_trace();
//! let json = trace.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! ```
#![warn(missing_docs)]

pub mod counters;
pub mod ctx;
pub mod flight;
pub mod hist;
pub mod json;
pub mod report;
pub mod span;
pub mod trace;

pub use ctx::TraceCtx;
pub use hist::LogHistogram;
pub use span::{enter, SpanGuard};
pub use trace::{is_tracing, start_trace, stop_trace, Trace};

/// Open a named span, returning an RAII guard that closes it on drop.
///
/// The name must be a `&'static str`. When tracing is disabled the whole
/// expression is one relaxed atomic load.
///
/// ```
/// let _g = tenbench_obs::span!("mttkrp.kernel");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}
