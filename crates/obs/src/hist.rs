//! Streaming log-bucketed histogram for latency percentiles.
//!
//! [`LogHistogram`] replaces materialized per-request latency vectors in
//! the serving report: memory is a fixed array of bucket counts no matter
//! how many samples arrive (the stress overload burst used to grow a
//! `Vec<f64>` per request). Buckets are logarithmic — [`SUB_BUCKETS`]
//! per octave (power of two) across [`LO_MS`]..[`HI_MS`] — so any
//! reported percentile is within a relative bucket error of
//! `2^(1/SUB_BUCKETS) - 1` (~9%) of the exact order statistic, which the
//! test suite asserts against exact percentiles.

use std::fmt::Write as _;

use crate::json::json_f64;

/// Sub-buckets per factor-of-two; bounds relative error at ~9%.
pub const SUB_BUCKETS: usize = 8;
/// Lower edge of the bucketed range (1 µs as milliseconds); smaller
/// samples clamp into the first bucket.
pub const LO_MS: f64 = 0.001;
/// Upper edge of the bucketed range (10 minutes as milliseconds); larger
/// samples clamp into the last bucket.
pub const HI_MS: f64 = 600_000.0;

/// log2(HI/LO) ≈ 29.2 octaves, rounded up.
const OCTAVES: usize = 30;
const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// Sub-bucket upper edges within one octave: `2^(j/SUB_BUCKETS)` for
/// `j = 1..SUB_BUCKETS` (the last edge, 2.0, is implied by the octave).
static SUB_EDGES: std::sync::LazyLock<[f64; SUB_BUCKETS - 1]> = std::sync::LazyLock::new(|| {
    std::array::from_fn(|j| 2f64.powf((j + 1) as f64 / SUB_BUCKETS as f64))
});

/// A bounded-memory latency histogram with log-spaced buckets.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket(value_ms: f64) -> usize {
        let clamped = value_ms.clamp(LO_MS, HI_MS);
        // `clamped / LO_MS` is exact for samples sitting on an octave
        // edge (LO_MS · 2^k shares LO_MS's mantissa, so the quotient is
        // exactly 2^k), but `log2().floor()` is not: libm rounding can
        // land such a sample one bucket off. Take the octave straight
        // from the exponent bits instead, then place the mantissa within
        // the octave against the precomputed sub-bucket edges.
        let ratio = clamped / LO_MS;
        debug_assert!(ratio >= 1.0);
        let bits = ratio.to_bits();
        let octave = ((bits >> 52) & 0x7ff) as usize - 1023;
        // Mantissa restored to [1, 2): the fractional position in the octave.
        let mantissa = f64::from_bits((bits & ((1u64 << 52) - 1)) | (1023u64 << 52));
        // Edges 2^(j/S) for j = 1..S; mantissa < edge[j-1] ⇒ sub-bucket j-1.
        let mut sub = SUB_BUCKETS - 1;
        for (j, &edge) in SUB_EDGES.iter().enumerate() {
            if mantissa < edge {
                sub = j;
                break;
            }
        }
        (octave * SUB_BUCKETS + sub).min(BUCKETS - 1)
    }

    /// The geometric midpoint a bucket reports for its samples.
    fn bucket_mid(idx: usize) -> f64 {
        // Bucket idx spans [LO·2^(idx/S), LO·2^((idx+1)/S)).
        LO_MS * 2f64.powf((idx as f64 + 0.5) / SUB_BUCKETS as f64)
    }

    /// Record one sample (milliseconds). Non-finite samples are ignored.
    pub fn record(&mut self, value_ms: f64) {
        if !value_ms.is_finite() {
            return;
        }
        self.counts[Self::bucket(value_ms)] += 1;
        self.count += 1;
        self.sum += value_ms;
        self.min = self.min.min(value_ms);
        self.max = self.max.max(value_ms);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `p`-th percentile (0..=100): the bucket midpoint of the sample
    /// at the same rank the exact report used (`round(p/100·(n-1))`),
    /// clamped to the exact observed min/max so extreme percentiles never
    /// leave the sampled range. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Serialize as a JSON object: summary stats plus the non-empty
    /// buckets as `[lo_ms, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"count\":{},\"mean_ms\":{},\"min_ms\":{},\"max_ms\":{},\"buckets\":[",
            self.count,
            json_f64(self.mean()),
            json_f64(self.min()),
            json_f64(self.max())
        );
        let mut first = true;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let lo = LO_MS * 2f64.powf(idx as f64 / SUB_BUCKETS as f64);
            let _ = write!(out, "[{},{}]", json_f64(lo), c);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx]
    }

    /// Max relative error of a bucketed percentile: one bucket's width.
    const BUCKET_ERR: f64 = 0.095; // 2^(1/8) - 1 ≈ 0.0905, plus slack

    #[test]
    fn percentiles_match_exact_within_bucket_error() {
        // A skewed latency-like distribution spanning several decades.
        let mut vals: Vec<f64> = (0..10_000)
            .map(|i| {
                let j = (i as u64).wrapping_mul(2654435761) % 10_000;
                0.05 + (j as f64 / 10_000.0).powi(4) * 900.0
            })
            .collect();
        let mut h = LogHistogram::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [50.0, 90.0, 99.0, 99.9] {
            let exact = exact_percentile(&vals, p);
            let approx = h.percentile(p);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= BUCKET_ERR,
                "p{p}: approx {approx} vs exact {exact} (rel err {rel:.4})"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert!((h.max() - vals[vals.len() - 1]).abs() < 1e-12);
        assert!((h.min() - vals[0]).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_sample() {
        let mut h = LogHistogram::new();
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.max(), 0.0);
        h.record(3.5);
        // One sample: every percentile clamps to the exact value.
        assert_eq!(h.percentile(0.0), 3.5);
        assert_eq!(h.percentile(50.0), 3.5);
        assert_eq!(h.percentile(100.0), 3.5);
        assert_eq!(h.mean(), 3.5);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for i in 0..1000 {
            let v = 0.01 * (i as f64 + 1.0);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        for p in [10.0, 50.0, 95.0] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn octave_edges_land_in_their_own_bucket() {
        // A sample at exactly LO_MS · 2^k opens octave k: bucket
        // k·SUB_BUCKETS, never one off. The old log2().floor() bucketing
        // could misplace these by a bucket when libm rounded the log down.
        for k in 0..OCTAVES {
            let v = LO_MS * (k as f64).exp2();
            let got = LogHistogram::bucket(v.min(HI_MS));
            let want = (k * SUB_BUCKETS).min(BUCKETS - 1);
            assert_eq!(got, want, "LO_MS · 2^{k} bucketed at {got}, want {want}");
            // Just below the edge stays in the previous octave's last
            // sub-bucket; just above stays in this one.
            if k > 0 && v < HI_MS {
                let below = LogHistogram::bucket(v * (1.0 - 1e-12));
                assert_eq!(below, want - 1, "below edge 2^{k}");
                let above = LogHistogram::bucket(v * (1.0 + 1e-12));
                assert_eq!(above, want, "above edge 2^{k}");
            }
        }
        // The clamping extremes collapse onto the buckets holding LO/HI.
        assert_eq!(LogHistogram::bucket(0.0), 0);
        assert_eq!(
            LogHistogram::bucket(HI_MS * 10.0),
            LogHistogram::bucket(HI_MS)
        );
    }

    #[test]
    fn bucket_matches_reported_span() {
        // Every in-range bucket's reported midpoint must bucket back to
        // itself: the placement function and the reporting span agree.
        for idx in 0..BUCKETS {
            let mid = LogHistogram::bucket_mid(idx);
            if mid > HI_MS {
                break; // past the clamp range, midpoints collapse onto HI
            }
            assert_eq!(LogHistogram::bucket(mid), idx);
        }
    }

    #[test]
    fn merge_with_empty_side_pins_min_max() {
        let mut filled = LogHistogram::new();
        filled.record(2.0);
        filled.record(8.0);
        // Merging an empty histogram in must not disturb anything —
        // in particular the empty side's ±inf min/max sentinels must not
        // leak into the totals.
        filled.merge(&LogHistogram::new());
        assert_eq!(filled.count(), 2);
        assert_eq!(filled.min(), 2.0);
        assert_eq!(filled.max(), 8.0);
        assert_eq!(filled.mean(), 5.0);
        // Merging into an empty histogram adopts the other side exactly.
        let mut empty = LogHistogram::new();
        empty.merge(&filled);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.min(), 2.0);
        assert_eq!(empty.max(), 8.0);
        assert_eq!(empty.percentile(50.0), filled.percentile(50.0));
        // Two empties stay empty (and report zeros, not sentinels).
        let mut a = LogHistogram::new();
        a.merge(&LogHistogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
    }

    #[test]
    fn out_of_range_clamps_and_json_parses() {
        let mut h = LogHistogram::new();
        h.record(1e-9);
        h.record(1e9);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        let doc = crate::json::Value::parse(&h.to_json()).expect("hist JSON parses");
        assert_eq!(
            doc.get("count").and_then(crate::json::Value::as_f64),
            Some(2.0)
        );
    }
}
