//! Cross-crate consistency: every implementation of every kernel —
//! sequential, rayon-parallel, HiCOO, gHiCOO, CSF, and the simulated GPU
//! variants — must agree on generated datasets from both generator
//! families.

use tenbench::core::coo::CooTensor;
use tenbench::core::csf::{mttkrp_csf, CsfTensor};
use tenbench::core::dense::{DenseMatrix, DenseVector};
use tenbench::core::hicoo::{GHicooTensor, HicooTensor};
use tenbench::core::kernels::{mttkrp, tew, ts, ttm, ttv, EwOp};
use tenbench::core::par::Schedule;
use tenbench::core::scalar::approx_eq;
use tenbench::gen::registry::find;
use tenbench::gpusim::device::DeviceSpec;
use tenbench::gpusim::kernels as gpuk;

const BLOCK_BITS: u8 = 5;
const RANK: usize = 8;

fn datasets() -> Vec<CooTensor<f32>> {
    ["s1", "s4", "s13", "r3"]
        .iter()
        .map(|id| find(id).unwrap().generate_with(6_000, 99))
        .collect()
}

fn assert_mat_eq(a: &DenseMatrix<f32>, b: &DenseMatrix<f32>, tol: f64, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}");
    for (x, y) in a.data().iter().zip(b.data()) {
        assert!(approx_eq(*x as f64, *y as f64, tol), "{what}: {x} vs {y}");
    }
}

#[test]
fn tew_ts_agree_across_formats_and_devices() {
    for x in datasets() {
        let y = ts::ts(&x, 3.0, EwOp::Mul).unwrap();
        let hx = HicooTensor::from_coo(&x, BLOCK_BITS).unwrap();
        let hy = HicooTensor::from_coo(&y, BLOCK_BITS).unwrap();
        let base = tew::tew_same_pattern_seq(&x, &y, EwOp::Add)
            .unwrap()
            .to_map();
        assert_eq!(
            tew::tew_same_pattern(&x, &y, EwOp::Add).unwrap().to_map(),
            base
        );
        assert_eq!(
            tew::tew_hicoo_same_pattern(&hx, &hy, EwOp::Add)
                .unwrap()
                .to_map(),
            base
        );
        let dev = DeviceSpec::p100();
        assert_eq!(
            gpuk::tew_coo_gpu(&dev, &x, &y, EwOp::Add)
                .unwrap()
                .0
                .to_map(),
            base
        );
        assert_eq!(
            gpuk::tew_hicoo_gpu(&dev, &hx, &hy, EwOp::Add)
                .unwrap()
                .0
                .to_map(),
            base
        );

        let tsbase = ts::ts_seq(&x, 0.25, EwOp::Mul).unwrap().to_map();
        assert_eq!(ts::ts(&x, 0.25, EwOp::Mul).unwrap().to_map(), tsbase);
        assert_eq!(ts::ts_hicoo(&hx, 0.25, EwOp::Mul).unwrap().to_map(), tsbase);
        assert_eq!(
            gpuk::ts_coo_gpu(&dev, &x, 0.25, EwOp::Mul)
                .unwrap()
                .0
                .to_map(),
            tsbase
        );
    }
}

#[test]
fn ttv_agrees_across_formats_and_devices() {
    for x in datasets() {
        let hx = HicooTensor::from_coo(&x, BLOCK_BITS).unwrap();
        let dev = DeviceSpec::v100();
        for mode in 0..x.order() {
            let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| {
                ((i % 13) as f32) * 0.5 - 2.0
            });
            let mut xm = x.clone();
            let fp = xm.fibers(mode).unwrap();
            let base = ttv::ttv_prepared_seq(&xm, &fp, &v).unwrap().to_map();
            assert_eq!(
                ttv::ttv_prepared(&xm, &fp, &v, Schedule::Static)
                    .unwrap()
                    .to_map(),
                base
            );
            let g = GHicooTensor::from_coo_for_mode(&x, BLOCK_BITS, mode).unwrap();
            let gfp = g.fibers(mode).unwrap();
            let hicoo_map = ttv::ttv_ghicoo(&g, &gfp, &v, Schedule::default())
                .unwrap()
                .to_map();
            // Fiber orders differ between layouts, so compare with tolerance.
            assert_eq!(hicoo_map.len(), base.len());
            for (k, b) in &base {
                assert!(approx_eq(hicoo_map[k], *b, 1e-4), "mode {mode} {k:?}");
            }
            let gpu = gpuk::ttv_hicoo_gpu(&dev, &hx, &v, mode).unwrap().0.to_map();
            assert_eq!(gpu.len(), base.len());
        }
    }
}

#[test]
fn ttm_agrees_across_formats_and_devices() {
    for x in datasets() {
        let hx = HicooTensor::from_coo(&x, BLOCK_BITS).unwrap();
        let dev = DeviceSpec::p100();
        for mode in 0..x.order() {
            let rows = x.shape().dim(mode) as usize;
            let u = DenseMatrix::from_fn(rows, RANK, |i, j| ((i * 7 + j) % 9) as f32 - 4.0);
            let base = ttm::ttm(&x, &u, mode).unwrap().to_map();
            let hic = ttm::ttm_hicoo(&hx, &u, mode).unwrap().to_map();
            assert_eq!(hic.len(), base.len(), "mode {mode}");
            for (k, b) in &base {
                assert!(approx_eq(hic[k], *b, 1e-4), "mode {mode} {k:?}");
            }
            let (gout, _) = gpuk::ttm_coo_gpu(&dev, &x, &u, mode).unwrap();
            let gm = gout.to_map();
            for (k, b) in &base {
                assert!(approx_eq(gm[k], *b, 1e-4), "gpu mode {mode} {k:?}");
            }
        }
    }
}

#[test]
fn mttkrp_agrees_across_everything() {
    for x in datasets() {
        let factors: Vec<DenseMatrix<f32>> = (0..x.order())
            .map(|m| {
                DenseMatrix::from_fn(x.shape().dim(m) as usize, RANK, |i, j| {
                    (((i * 3 + j * 11 + m) % 7) as f32 - 3.0) * 0.25
                })
            })
            .collect();
        let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
        let hx = HicooTensor::from_coo(&x, BLOCK_BITS).unwrap();
        let dev = DeviceSpec::v100();
        for mode in 0..x.order() {
            let base = mttkrp::mttkrp_seq(&x, &frefs, mode).unwrap();
            for strat in [
                mttkrp::MttkrpStrategy::Atomic,
                mttkrp::MttkrpStrategy::Privatized,
                mttkrp::MttkrpStrategy::RowLocked,
            ] {
                let got = mttkrp::mttkrp_with(&x, &frefs, mode, strat).unwrap();
                assert_mat_eq(&got, &base, 1e-3, &format!("{strat:?} mode {mode}"));
            }
            let hic = mttkrp::mttkrp_hicoo(&hx, &frefs, mode).unwrap();
            assert_mat_eq(&hic, &base, 1e-3, &format!("hicoo mode {mode}"));

            // CSF rooted at this mode.
            let mut order: Vec<usize> = (0..x.order()).filter(|&m| m != mode).collect();
            order.insert(0, mode);
            let csf = CsfTensor::from_coo(&x, Some(order)).unwrap();
            let cgot = mttkrp_csf(&csf, &frefs, mode).unwrap();
            assert_mat_eq(&cgot, &base, 1e-3, &format!("csf mode {mode}"));

            let (ggot, _) = gpuk::mttkrp_coo_gpu(&dev, &x, &frefs, mode).unwrap();
            assert_mat_eq(&ggot, &base, 1e-3, &format!("gpu mode {mode}"));
            let (hgot, _) = gpuk::mttkrp_hicoo_gpu(&dev, &hx, &frefs, mode).unwrap();
            assert_mat_eq(&hgot, &base, 1e-3, &format!("gpu hicoo mode {mode}"));
        }
    }
}
