//! End-to-end pipelines spanning every crate: generate → serialize →
//! reload → convert → compute → decompose, plus the simulated-GPU path and
//! the Roofline bound computation — the flows a downstream user of the
//! suite actually runs.

use tenbench::core::hicoo::HicooTensor;
use tenbench::core::kernels::mttkrp::MttkrpStrategy;
use tenbench::core::methods::{cp_als, tensor_power_method, CpAlsOptions};
use tenbench::gen::registry::{find, REAL_DATASETS, SYNTHETIC_DATASETS};
use tenbench::gen::{KroneckerGenerator, TensorStats};
use tenbench::gpusim::device::DeviceSpec;
use tenbench::gpusim::kernels::mttkrp_coo_gpu;
use tenbench::io::{bin, tns};
use tenbench::prelude::*;
use tenbench::roofline::bounds;
use tenbench::roofline::model::Roofline;
use tenbench::roofline::platform::PLATFORMS;

#[test]
fn generate_serialize_reload_compute() {
    let d = find("s5").unwrap();
    let x = d.generate_with(8_000, 5);

    // Text round-trip.
    let mut text = Vec::new();
    tns::write_tns(&x, &mut text).unwrap();
    let back: tenbench::core::coo::CooTensor<f32> =
        tns::read_tns_with_shape(text.as_slice(), x.shape().clone()).unwrap();
    assert_eq!(back.to_map(), x.to_map());

    // Binary round-trip.
    let mut blob = Vec::new();
    bin::write_bin(&back, &mut blob).unwrap();
    let back2: tenbench::core::coo::CooTensor<f32> = bin::read_bin(blob.as_slice()).unwrap();
    assert_eq!(back2.to_map(), x.to_map());

    // Convert and compute on the reloaded tensor.
    let h = HicooTensor::from_coo(&back2, 6).unwrap();
    assert_eq!(h.to_map(), x.to_map());
    let stats = TensorStats::compute(&back2, 6);
    assert_eq!(stats.nnz, 8_000);
    assert!(stats.hicoo_blocks > 0);
}

#[test]
fn cp_als_runs_on_every_generator_family() {
    for id in ["s1", "s4", "r10"] {
        let x = find(id).unwrap().generate_with(4_000, 3);
        let d = cp_als(
            &x,
            &CpAlsOptions {
                rank: 4,
                max_iters: 8,
                tol: 1e-4,
                seed: 1,
                strategy: MttkrpStrategy::Atomic,
                backend: Default::default(),
            },
        )
        .unwrap();
        assert!(d.fit.is_finite(), "{id}");
        assert!((0.0..=1.0 + 1e-9).contains(&d.fit), "{id}: fit {}", d.fit);
        assert_eq!(d.factors.len(), x.order());
    }
}

#[test]
fn power_method_runs_on_kronecker_tensor() {
    // Cubical Kronecker tensor; the method converges to *some* fixed point
    // with a finite Rayleigh quotient.
    let g = KroneckerGenerator::rmat_like(Shape::cubical(3, 64), 1_500);
    let x64 = g.generate(17);
    let x: tenbench::core::coo::CooTensor<f64> = tenbench::core::coo::CooTensor::from_entries(
        x64.shape().clone(),
        x64.iter_entries().map(|(c, v)| (c, v as f64)).collect(),
    )
    .unwrap();
    let r = tensor_power_method(&x, 60, 1e-9, 5).unwrap();
    assert!(r.eigenvalue.is_finite());
    assert!((r.eigenvector.norm2() - 1.0).abs() < 1e-6);
}

#[test]
fn gpu_pipeline_with_roofline_bound() {
    let x = find("s4").unwrap().generate_with(10_000, 9);
    let factors = tenbench_bench_factors(&x, 16);
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    let dev = DeviceSpec::v100();
    let (_, stats) = mttkrp_coo_gpu(&dev, &x, &frefs, 0).unwrap();
    let bound = bounds::mttkrp_coo_bound(
        x.order(),
        x.nnz() as u64,
        16,
        dev.dram_bw_gbs,
        dev.peak_sp_gflops,
    );
    let eff = bounds::efficiency(stats.gflops(), bound);
    // A small tensor with heavy reuse can beat the DRAM bound, but not by
    // orders of magnitude; and it must do real work.
    assert!(eff > 0.01 && eff < 50.0, "eff {eff}");
}

fn tenbench_bench_factors(x: &CooTensor<f32>, r: usize) -> Vec<DenseMatrix<f32>> {
    (0..x.order())
        .map(|m| {
            DenseMatrix::from_fn(x.shape().dim(m) as usize, r, |i, j| {
                ((i + j + m) % 5) as f32 * 0.2
            })
        })
        .collect()
}

#[test]
fn every_registry_dataset_generates_and_validates_small() {
    for d in REAL_DATASETS.iter().chain(SYNTHETIC_DATASETS) {
        let x = d.generate_with(2_000, 1);
        assert_eq!(x.order(), d.order(), "{}", d.id);
        assert!(x.validate().is_ok(), "{}", d.id);
        assert!(x.nnz() >= 1_900, "{}: {}", d.id, x.nnz());
    }
}

#[test]
fn rooflines_rank_platforms_consistently() {
    let rooflines: Vec<Roofline> = PLATFORMS.iter().map(Roofline::from_platform).collect();
    // At the Tew OI every platform is bandwidth-bound, so the ranking must
    // follow the ERT-DRAM ordering.
    let oi = 1.0 / 12.0;
    for pair in rooflines.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert_eq!(
            a.attainable_dram(oi) < b.attainable_dram(oi),
            a.ert_dram_gbs() < b.ert_dram_gbs()
        );
    }
}
