//! Property-based tests on kernel algebra: the mathematical identities the
//! five operations must satisfy on arbitrary tensors.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tenbench::core::coo::CooTensor;
use tenbench::core::dense::{DenseMatrix, DenseVector};
use tenbench::core::hicoo::HicooTensor;
use tenbench::core::kernels::mttkrp::MttkrpStrategy;
use tenbench::core::kernels::{mttkrp, tew, ts, ttm, ttv, EwOp};
use tenbench::core::scalar::approx_eq;
use tenbench::prelude::*;

fn arb_tensor() -> impl Strategy<Value = CooTensor<f64>> {
    (2usize..=3)
        .prop_flat_map(|order| {
            let dims = prop::collection::vec(1u32..10, order);
            dims.prop_flat_map(move |dims| {
                let shape = Shape::new(dims.clone());
                let coord = dims.iter().map(|&d| (0u32..d).boxed()).collect::<Vec<_>>();
                let entry = (coord, -50i32..50).prop_map(|(c, v)| (c, v as f64 * 0.25));
                prop::collection::vec(entry, 1..30).prop_map(move |entries| {
                    CooTensor::from_entries(shape.clone(), entries).unwrap()
                })
            })
        })
        .no_shrink()
}

/// Two independent tensors over one shared random shape (for binary ops).
fn arb_tensor_pair() -> impl Strategy<Value = (CooTensor<f64>, CooTensor<f64>)> {
    (2usize..=3)
        .prop_flat_map(|order| {
            let dims = prop::collection::vec(1u32..10, order);
            dims.prop_flat_map(move |dims| {
                let shape = Shape::new(dims.clone());
                let coord = || dims.iter().map(|&d| (0u32..d).boxed()).collect::<Vec<_>>();
                let entry = |c: Vec<BoxedStrategy<u32>>| {
                    (c, -50i32..50).prop_map(|(c, v)| (c, v as f64 * 0.25))
                };
                let shape2 = shape.clone();
                (
                    prop::collection::vec(entry(coord()), 1..30),
                    prop::collection::vec(entry(coord()), 1..30),
                )
                    .prop_map(move |(a, b)| {
                        (
                            CooTensor::from_entries(shape.clone(), a).unwrap(),
                            CooTensor::from_entries(shape2.clone(), b).unwrap(),
                        )
                    })
            })
        })
        .no_shrink()
}

fn maps_close(a: &BTreeMap<Vec<u32>, f64>, b: &BTreeMap<Vec<u32>, f64>, tol: f64) -> bool {
    let keys: std::collections::BTreeSet<_> = a.keys().chain(b.keys()).collect();
    keys.iter().all(|k| {
        let x = a.get(*k).copied().unwrap_or(0.0);
        let y = b.get(*k).copied().unwrap_or(0.0);
        approx_eq(x, y, tol)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tew_add_then_sub_is_identity((x, y) in arb_tensor_pair()) {
        let sum = tew::tew(&x, &y, EwOp::Add).unwrap();
        let back = tew::tew(&sum, &y, EwOp::Sub).unwrap();
        let mut bm = back.to_map();
        bm.retain(|_, v| v.abs() > 1e-9);
        let mut xm = x.to_map();
        xm.retain(|_, v| v.abs() > 1e-9);
        prop_assert!(maps_close(&bm, &xm, 1e-9));
    }

    #[test]
    fn tew_add_commutes((x, y) in arb_tensor_pair()) {
        let ab = tew::tew(&x, &y, EwOp::Add).unwrap().to_map();
        let ba = tew::tew(&y, &x, EwOp::Add).unwrap().to_map();
        prop_assert!(maps_close(&ab, &ba, 1e-12));
    }

    #[test]
    fn ts_mul_then_div_is_identity(x in arb_tensor(), s in 1i32..50) {
        let s = s as f64 * 0.5;
        let scaled = ts::ts(&x, s, EwOp::Mul).unwrap();
        let back = ts::ts(&scaled, s, EwOp::Div).unwrap();
        prop_assert!(maps_close(&back.to_map(), &x.to_map(), 1e-12));
    }

    #[test]
    fn ttv_is_linear_in_the_vector(x in arb_tensor(), mode in 0usize..3, a in 1i32..10) {
        let mode = mode % x.order();
        let n = x.shape().dim(mode) as usize;
        let a = a as f64;
        let v = DenseVector::from_fn(n, |i| (i as f64 * 0.3) - 1.0);
        let av = DenseVector::from_fn(n, |i| a * ((i as f64 * 0.3) - 1.0));
        let y1 = ttv::ttv(&x, &av, mode).unwrap().to_map();
        let y2: BTreeMap<Vec<u32>, f64> = ttv::ttv(&x, &v, mode)
            .unwrap()
            .to_map()
            .into_iter()
            .map(|(k, val)| (k, a * val))
            .collect();
        prop_assert!(maps_close(&y1, &y2, 1e-9));
    }

    #[test]
    fn ttm_with_one_column_equals_ttv(x in arb_tensor(), mode in 0usize..3) {
        let mode = mode % x.order();
        let n = x.shape().dim(mode) as usize;
        let v = DenseVector::from_fn(n, |i| (i % 7) as f64 - 3.0);
        let u = DenseMatrix::from_fn(n, 1, |i, _| v[i]);
        let tv = ttv::ttv(&x, &v, mode).unwrap();
        let tm = ttm::ttm(&x, &u, mode).unwrap();
        // Ttm keeps the mode (size 1); Ttv drops it. Compare after removing
        // the dense coordinate.
        let tm_map: BTreeMap<Vec<u32>, f64> = tm
            .to_map()
            .into_iter()
            .map(|(mut k, v)| {
                k.remove(mode);
                (k, v)
            })
            .collect();
        let mut tv_map = tv.to_map();
        tv_map.retain(|_, v| v.abs() > 1e-12);
        prop_assert!(maps_close(&tm_map, &tv_map, 1e-9));
    }

    #[test]
    fn mttkrp_is_linear_in_values(x in arb_tensor(), mode in 0usize..3) {
        let mode = mode % x.order();
        let factors: Vec<DenseMatrix<f64>> = (0..x.order())
            .map(|m| DenseMatrix::from_fn(x.shape().dim(m) as usize, 3, |i, j| {
                ((i + 2 * j + m) % 5) as f64 - 2.0
            }))
            .collect();
        let frefs: Vec<&DenseMatrix<f64>> = factors.iter().collect();
        let base = mttkrp::mttkrp_seq(&x, &frefs, mode).unwrap();
        let x2 = ts::ts(&x, 2.0, EwOp::Mul).unwrap();
        let doubled = mttkrp::mttkrp_seq(&x2, &frefs, mode).unwrap();
        for (a, b) in base.data().iter().zip(doubled.data()) {
            prop_assert!(approx_eq(2.0 * a, *b, 1e-9), "{a} {b}");
        }
    }

    #[test]
    fn scheduled_mttkrp_matches_seq_on_random_tensors(x in arb_tensor(), bits in 1u8..=6) {
        let h = HicooTensor::from_coo(&x, bits).unwrap();
        let factors: Vec<DenseMatrix<f64>> = (0..x.order())
            .map(|m| DenseMatrix::from_fn(x.shape().dim(m) as usize, 3, |i, j| {
                ((i + 3 * j + m) % 7) as f64 * 0.5 - 1.5
            }))
            .collect();
        let frefs: Vec<&DenseMatrix<f64>> = factors.iter().collect();
        for mode in 0..x.order() {
            let reference = mttkrp::mttkrp_seq(&x, &frefs, mode).unwrap();
            let coo_sched = mttkrp::mttkrp_with(&x, &frefs, mode, MttkrpStrategy::Scheduled).unwrap();
            let hic_sched = mttkrp::mttkrp_hicoo_sched(&h, &frefs, mode).unwrap();
            for (p, q) in reference.data().iter().zip(coo_sched.data()) {
                prop_assert!(approx_eq(*p, *q, 1e-5), "coo mode {mode}: {p} vs {q}");
            }
            for (p, q) in reference.data().iter().zip(hic_sched.data()) {
                prop_assert!(approx_eq(*p, *q, 1e-5), "hicoo mode {mode}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn scheduled_ttv_ttm_match_reference_on_random_tensors(x in arb_tensor(), bits in 1u8..=6) {
        let h = HicooTensor::from_coo(&x, bits).unwrap();
        for mode in 0..x.order() {
            let n = x.shape().dim(mode) as usize;
            let v = DenseVector::from_fn(n, |i| (i as f64 * 0.7) - 1.0);
            let want = ttv::ttv(&x, &v, mode).unwrap().to_map();
            let got = ttv::ttv_hicoo_sched(&h, &v, mode).unwrap().to_map();
            prop_assert!(maps_close(&want, &got, 1e-5), "ttv mode {mode}");

            let u = DenseMatrix::from_fn(n, 2, |i, j| ((i + 2 * j) % 5) as f64 - 2.0);
            let want = ttm::ttm(&x, &u, mode).unwrap().to_map();
            let got = ttm::ttm_hicoo_sched(&h, &u, mode).unwrap().to_map();
            prop_assert!(maps_close(&want, &got, 1e-5), "ttm mode {mode}");
        }
    }

    #[test]
    fn hicoo_kernels_match_coo_on_random_tensors(x in arb_tensor(), bits in 1u8..=6, mode in 0usize..3) {
        let mode = mode % x.order();
        let h = HicooTensor::from_coo(&x, bits).unwrap();
        let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i + 1) as f64);
        let coo = ttv::ttv(&x, &v, mode).unwrap().to_map();
        let hic = ttv::ttv_hicoo(&h, &v, mode).unwrap().to_map();
        prop_assert!(maps_close(&coo, &hic, 1e-9));

        let factors: Vec<DenseMatrix<f64>> = (0..x.order())
            .map(|m| DenseMatrix::from_fn(x.shape().dim(m) as usize, 2, |i, j| {
                (i + j) as f64 * 0.5
            }))
            .collect();
        let frefs: Vec<&DenseMatrix<f64>> = factors.iter().collect();
        let a = mttkrp::mttkrp_seq(&x, &frefs, mode).unwrap();
        let b = mttkrp::mttkrp_hicoo_seq(&h, &frefs, mode).unwrap();
        for (p, q) in a.data().iter().zip(b.data()) {
            prop_assert!(approx_eq(*p, *q, 1e-9));
        }
    }
}

/// Deterministic edge cases for the scheduled kernels that random tensors
/// are unlikely to hit: no nonzeros at all, a single occupied block, and
/// every nonzero landing in one output row-block (a single schedule group
/// carrying the full tensor).
mod scheduled_edge_cases {
    use super::*;

    fn check_all_scheduled(x: &CooTensor<f64>, bits: u8) {
        let h = HicooTensor::from_coo(x, bits).unwrap();
        let factors: Vec<DenseMatrix<f64>> = (0..x.order())
            .map(|m| {
                DenseMatrix::from_fn(x.shape().dim(m) as usize, 4, |i, j| {
                    ((i + j + m) % 3) as f64 + 0.5
                })
            })
            .collect();
        let frefs: Vec<&DenseMatrix<f64>> = factors.iter().collect();
        for mode in 0..x.order() {
            let want = mttkrp::mttkrp_seq(x, &frefs, mode).unwrap();
            let coo = mttkrp::mttkrp_with(x, &frefs, mode, MttkrpStrategy::Scheduled).unwrap();
            let hic = mttkrp::mttkrp_hicoo_sched(&h, &frefs, mode).unwrap();
            for (p, q) in want.data().iter().zip(coo.data()) {
                assert!(approx_eq(*p, *q, 1e-5), "coo mttkrp mode {mode}");
            }
            for (p, q) in want.data().iter().zip(hic.data()) {
                assert!(approx_eq(*p, *q, 1e-5), "hicoo mttkrp mode {mode}");
            }

            let n = x.shape().dim(mode) as usize;
            let v = DenseVector::from_fn(n, |i| i as f64 + 1.0);
            let want = ttv::ttv(x, &v, mode).unwrap().to_map();
            let got = ttv::ttv_hicoo_sched(&h, &v, mode).unwrap().to_map();
            assert_eq!(want, got, "ttv mode {mode}");

            let u = DenseMatrix::from_fn(n, 2, |i, j| (i + j) as f64 * 0.25);
            let want = ttm::ttm(x, &u, mode).unwrap().to_map();
            let got = ttm::ttm_hicoo_sched(&h, &u, mode).unwrap().to_map();
            assert_eq!(want, got, "ttm mode {mode}");
        }
    }

    #[test]
    fn empty_tensor() {
        let x = CooTensor::<f64>::empty(Shape::new(vec![6, 5, 4]));
        check_all_scheduled(&x, 2);
    }

    #[test]
    fn single_block() {
        // All coordinates below 4 with 2-bit blocks: exactly one block.
        let entries = vec![
            (vec![0, 1, 2], 1.5),
            (vec![3, 3, 3], -2.0),
            (vec![0, 0, 0], 0.75),
            (vec![2, 1, 0], 4.0),
        ];
        let x = CooTensor::from_entries(Shape::new(vec![16, 16, 16]), entries).unwrap();
        check_all_scheduled(&x, 2);
    }

    #[test]
    fn all_nnz_in_one_output_row_block() {
        // Mode-0 coordinates all in [0, 4): one mode-0 row block, so the
        // mode-0 schedule has a single group holding every block.
        let entries: Vec<(Vec<u32>, f64)> = (0..200u32)
            .map(|k| (vec![k % 4, k % 13, k % 7], (k as f64) * 0.125 - 3.0))
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![64, 16, 8]), entries).unwrap();
        check_all_scheduled(&x, 2);
    }
}
