//! Property-based tests on the format layer: every conversion preserves
//! the coordinate → value map, sorting never loses entries, and the storage
//! accounting matches the structures.

use proptest::prelude::*;
use tenbench::core::coo::CooTensor;
use tenbench::core::csf::CsfTensor;
use tenbench::core::hicoo::{GHicooTensor, HicooTensor};
use tenbench::io::{bin, tns};
use tenbench::prelude::*;

/// A random small tensor: order 2–5 (order 5 exercises the
/// comparison-based Morton path that packed 128-bit keys cannot cover),
/// dims 1–12, up to 40 distinct entries.
fn arb_tensor() -> impl Strategy<Value = CooTensor<f32>> {
    (2usize..=5)
        .prop_flat_map(|order| {
            let dims = prop::collection::vec(1u32..12, order);
            dims.prop_flat_map(move |dims| {
                let shape = Shape::new(dims.clone());
                let coord = dims.iter().map(|&d| (0u32..d).boxed()).collect::<Vec<_>>();
                let entry = (coord, -100i32..100).prop_map(|(c, v)| (c, v as f32 * 0.5));
                prop::collection::vec(entry, 0..40).prop_map(move |entries| {
                    CooTensor::from_entries(shape.clone(), entries).unwrap()
                })
            })
        })
        .no_shrink()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hicoo_round_trip(x in arb_tensor(), bits in 1u8..=8) {
        let h = HicooTensor::from_coo(&x, bits).unwrap();
        prop_assert!(h.validate().is_ok());
        prop_assert_eq!(h.to_map(), x.to_map());
        prop_assert_eq!(h.nnz(), x.nnz());
    }

    #[test]
    fn ghicoo_round_trip_any_plan(x in arb_tensor(), bits in 1u8..=8, plan_bits in 0usize..32) {
        let order = x.order();
        let compressed: Vec<bool> = (0..order).map(|m| (plan_bits >> m) & 1 == 1).collect();
        let g = GHicooTensor::from_coo(&x, bits, &compressed).unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.to_map(), x.to_map());
    }

    #[test]
    fn csf_round_trip_any_root(x in arb_tensor(), root in 0usize..5) {
        let order = x.order();
        let root = root % order;
        let mut mo: Vec<usize> = (0..order).filter(|&m| m != root).collect();
        mo.insert(0, root);
        let c = CsfTensor::from_coo(&x, Some(mo)).unwrap();
        prop_assert!(c.validate().is_ok());
        prop_assert_eq!(c.to_map(), x.to_map());
    }

    #[test]
    fn sorting_preserves_entries(x in arb_tensor(), perm_seed in 0usize..24, bits in 1u8..=8) {
        let order = x.order();
        // Build some permutation of the modes from the seed.
        let mut modes: Vec<usize> = (0..order).collect();
        let mut s = perm_seed;
        for i in (1..order).rev() {
            modes.swap(i, s % (i + 1));
            s /= i + 1;
        }
        let mut a = x.clone();
        a.sort_lexicographic(&modes);
        prop_assert_eq!(a.to_map(), x.to_map());
        prop_assert!(a.sort_state().is_lexicographic(&modes));
        let mut b = x.clone();
        b.sort_morton(bits);
        prop_assert_eq!(b.to_map(), x.to_map());
    }

    #[test]
    fn fibers_partition_the_tensor(x in arb_tensor(), mode in 0usize..5) {
        let mode = mode % x.order();
        let mut xm = x.clone();
        let fp = xm.fibers(mode).unwrap();
        let covered: usize = (0..fp.num_fibers()).map(|f| fp.fiber_range(f).len()).sum();
        prop_assert_eq!(covered, x.nnz());
        // Within a fiber, all non-product-mode coordinates agree.
        for f in 0..fp.num_fibers() {
            let r = fp.fiber_range(f);
            for md in 0..x.order() {
                if md == mode { continue; }
                let first = xm.mode_inds(md)[r.start];
                prop_assert!(xm.mode_inds(md)[r.clone()].iter().all(|&i| i == first));
            }
        }
    }

    #[test]
    fn io_round_trips(x in arb_tensor()) {
        let mut text = Vec::new();
        tns::write_tns(&x, &mut text).unwrap();
        let t: CooTensor<f32> = tns::read_tns_with_shape(text.as_slice(), x.shape().clone()).unwrap();
        prop_assert_eq!(t.to_map(), x.to_map());

        let mut blob = Vec::new();
        bin::write_bin(&x, &mut blob).unwrap();
        let b: CooTensor<f32> = bin::read_bin(blob.as_slice()).unwrap();
        prop_assert_eq!(b.to_map(), x.to_map());
        prop_assert_eq!(b.shape(), x.shape());
    }

    #[test]
    fn storage_accounting_is_exact(x in arb_tensor(), bits in 1u8..=8) {
        // COO: 4 bytes per index per mode plus 4 per value.
        let m = x.nnz() as u64;
        prop_assert_eq!(x.storage_bytes(), m * (4 * x.order() as u64 + 4));
        let h = HicooTensor::from_coo(&x, bits).unwrap();
        let nb = h.num_blocks() as u64;
        let n = x.order() as u64;
        prop_assert_eq!(h.storage_bytes(), 8 * (nb + 1) + 4 * n * nb + n * m + 4 * m);
    }
}
