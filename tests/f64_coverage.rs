//! Double-precision coverage: every format and kernel is generic over the
//! scalar; this suite runs the full cross-format consistency check in
//! `f64`, where comparisons can be exact-ish (1e-12) instead of
//! single-precision tolerances.

use tenbench::core::coo::{CooTensor, MultiSemiSparseTensor};
use tenbench::core::csf::CsfTensor;
use tenbench::core::dense::{DenseMatrix, DenseVector};
use tenbench::core::hicoo::HicooTensor;
use tenbench::core::kernels::{contract, mttkrp, tew, ts, ttm, ttv, EwOp};
use tenbench::core::methods::{cp_als, CpAlsOptions};
use tenbench::core::scalar::approx_eq;
use tenbench::prelude::*;

fn sample() -> CooTensor<f64> {
    let entries: Vec<(Vec<u32>, f64)> = (0..600u32)
        .map(|i| {
            (
                vec![i % 23, (i * 7) % 19, (i * 13) % 17],
                ((i % 31) as f64 - 15.0) * 0.125,
            )
        })
        .collect();
    CooTensor::from_entries(Shape::new(vec![23, 19, 17]), entries).unwrap()
}

#[test]
fn formats_round_trip_in_f64() {
    let x = sample();
    assert_eq!(HicooTensor::from_coo(&x, 3).unwrap().to_map(), x.to_map());
    assert_eq!(CsfTensor::from_coo(&x, None).unwrap().to_map(), x.to_map());
    assert_eq!(MultiSemiSparseTensor::from_coo(&x).to_map(), {
        let mut m = x.to_map();
        m.retain(|_, v| *v != 0.0);
        m
    });
    // Binary I/O preserves f64 bit patterns.
    let mut blob = Vec::new();
    tenbench::io::bin::write_bin(&x, &mut blob).unwrap();
    let back: CooTensor<f64> = tenbench::io::bin::read_bin(blob.as_slice()).unwrap();
    assert_eq!(back.vals(), x.vals());
}

#[test]
fn kernels_agree_tightly_in_f64() {
    let x = sample();
    let h = HicooTensor::from_coo(&x, 3).unwrap();
    let y = ts::ts(&x, 2.0, EwOp::Mul).unwrap();
    let hy = HicooTensor::from_coo(&y, 3).unwrap();

    // Tew / Ts.
    assert_eq!(
        tew::tew_same_pattern(&x, &y, EwOp::Add).unwrap().to_map(),
        tew::tew_hicoo_same_pattern(&h, &hy, EwOp::Add)
            .unwrap()
            .to_map()
    );

    // Ttv / Ttm / Mttkrp per mode, COO vs HiCOO, 1e-12 relative.
    for mode in 0..3 {
        let dim = x.shape().dim(mode) as usize;
        let v = DenseVector::from_fn(dim, |i| (i as f64) * 0.01 - 0.05);
        let a = ttv::ttv(&x, &v, mode).unwrap().to_map();
        let b = ttv::ttv_hicoo(&h, &v, mode).unwrap().to_map();
        assert_eq!(a.len(), b.len());
        for (k, av) in &a {
            assert!(approx_eq(*av, b[k], 1e-12), "ttv mode {mode} {k:?}");
        }

        let u = DenseMatrix::from_fn(dim, 5, |i, j| ((i * 5 + j) % 11) as f64 - 5.0);
        let tm = ttm::ttm(&x, &u, mode).unwrap().to_map();
        let tmh = ttm::ttm_hicoo(&h, &u, mode).unwrap().to_map();
        for (k, av) in &tm {
            assert!(approx_eq(*av, tmh[k], 1e-12), "ttm mode {mode} {k:?}");
        }

        let factors: Vec<DenseMatrix<f64>> = (0..3)
            .map(|m| {
                DenseMatrix::from_fn(x.shape().dim(m) as usize, 5, |i, j| {
                    ((i + 3 * j + m) % 7) as f64 * 0.25
                })
            })
            .collect();
        let frefs: Vec<&DenseMatrix<f64>> = factors.iter().collect();
        let ma = mttkrp::mttkrp_seq(&x, &frefs, mode).unwrap();
        let mb = mttkrp::mttkrp_hicoo_seq(&h, &frefs, mode).unwrap();
        for (p, q) in ma.data().iter().zip(mb.data()) {
            assert!(approx_eq(*p, *q, 1e-12), "mttkrp mode {mode}");
        }
    }
}

#[test]
fn contraction_and_cp_als_run_in_f64() {
    let x = sample();
    let y = CooTensor::<f64>::from_entries(
        Shape::new(vec![17, 6]),
        (0..40u32)
            .map(|i| (vec![i % 17, i % 6], i as f64 * 0.5))
            .collect(),
    )
    .unwrap();
    // (3-1) free modes of x plus (2-1) of y.
    let z = contract::contract(&x, 2, &y, 0).unwrap();
    assert_eq!(z.order(), 3);
    assert!(z.validate().is_ok());

    let d = cp_als(
        &x,
        &CpAlsOptions {
            rank: 3,
            max_iters: 10,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(d.fit.is_finite());
    assert_eq!(d.lambda.len(), 3);
}
