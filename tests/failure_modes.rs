//! Failure injection: every API boundary must reject malformed input with
//! a descriptive error instead of panicking or computing garbage.

use tenbench::core::coo::CooTensor;
use tenbench::core::csf::CsfTensor;
use tenbench::core::dense::{DenseMatrix, DenseVector};
use tenbench::core::hicoo::{GHicooTensor, HicooTensor};
use tenbench::core::kernels::{contract, mttkrp, tew, ts, ttm, ttv, EwOp};
use tenbench::core::TensorError;
use tenbench::io::{bin, tns, IoError};
use tenbench::prelude::*;

fn sample() -> CooTensor<f32> {
    CooTensor::from_entries(
        Shape::new(vec![4, 5, 6]),
        vec![
            (vec![0, 0, 0], 1.0),
            (vec![3, 4, 5], 2.0),
            (vec![1, 2, 3], 3.0),
        ],
    )
    .unwrap()
}

#[test]
fn construction_failures() {
    // Out-of-bounds coordinate.
    assert!(matches!(
        CooTensor::from_entries(Shape::new(vec![2, 2]), vec![(vec![2, 0], 1.0f32)]),
        Err(TensorError::IndexOutOfBounds { .. })
    ));
    // Wrong-arity coordinate.
    assert!(matches!(
        CooTensor::from_entries(Shape::new(vec![2, 2]), vec![(vec![0], 1.0f32)]),
        Err(TensorError::OrderMismatch { .. })
    ));
    // Ragged struct-of-arrays parts.
    assert!(CooTensor::from_parts(
        Shape::new(vec![2, 2]),
        vec![vec![0], vec![0, 1]],
        vec![1.0f32]
    )
    .is_err());
}

#[test]
fn format_conversion_failures() {
    let x = sample();
    assert!(matches!(
        HicooTensor::from_coo(&x, 0),
        Err(TensorError::InvalidBlockBits(0))
    ));
    assert!(matches!(
        HicooTensor::from_coo(&x, 12),
        Err(TensorError::InvalidBlockBits(12))
    ));
    assert!(matches!(
        GHicooTensor::from_coo(&x, 4, &[true, false]),
        Err(TensorError::InvalidCompressionPlan { .. })
    ));
    assert!(CsfTensor::from_coo(&x, Some(vec![0, 1])).is_err());
    assert!(CsfTensor::from_coo(&x, Some(vec![0, 1, 1])).is_err());
}

#[test]
fn kernel_operand_failures() {
    let x = sample();
    let y =
        CooTensor::from_entries(Shape::new(vec![4, 5, 7]), vec![(vec![0, 0, 0], 1.0f32)]).unwrap();
    // Shape mismatch in Tew.
    assert!(matches!(
        tew::tew(&x, &y, EwOp::Add),
        Err(TensorError::ShapeMismatch { .. })
    ));
    // Division by zero scalar in Ts.
    assert_eq!(ts::ts(&x, 0.0, EwOp::Div), Err(TensorError::DivisionByZero));
    // Wrong vector length / bad mode in Ttv.
    assert!(matches!(
        ttv::ttv(&x, &DenseVector::constant(5, 1.0f32), 2),
        Err(TensorError::OperandLengthMismatch { .. })
    ));
    assert!(matches!(
        ttv::ttv(&x, &DenseVector::constant(6, 1.0f32), 3),
        Err(TensorError::ModeOutOfRange { .. })
    ));
    // Wrong matrix rows in Ttm.
    assert!(ttm::ttm(&x, &DenseMatrix::constant(7, 4, 1.0f32), 2).is_err());
    // Factor set problems in Mttkrp.
    let good: Vec<DenseMatrix<f32>> = vec![
        DenseMatrix::zeros(4, 3),
        DenseMatrix::zeros(5, 3),
        DenseMatrix::zeros(6, 3),
    ];
    let refs: Vec<&DenseMatrix<f32>> = good.iter().collect();
    assert!(mttkrp::mttkrp(&x, &refs[..2], 0).is_err());
    let mixed_rank: Vec<DenseMatrix<f32>> = vec![
        DenseMatrix::zeros(4, 3),
        DenseMatrix::zeros(5, 2),
        DenseMatrix::zeros(6, 3),
    ];
    let refs2: Vec<&DenseMatrix<f32>> = mixed_rank.iter().collect();
    assert!(matches!(
        mttkrp::mttkrp(&x, &refs2, 0),
        Err(TensorError::FactorMismatch(_))
    ));
    // Contraction extent mismatch (6 vs 7).
    assert!(contract::contract(&x, 2, &y, 2).is_err());
}

#[test]
fn prepared_kernels_reject_stale_preparation() {
    let mut a = sample();
    let fp = a.fibers(2).unwrap();
    // Re-sorting invalidates the fiber partition's assumed order.
    a.sort_mode_last(0);
    let v = DenseVector::constant(6, 1.0f32);
    assert!(ttv::ttv_prepared(&a, &fp, &v, Default::default()).is_err());
    let u = DenseMatrix::constant(6, 2, 1.0f32);
    assert!(ttm::ttm_prepared(&a, &fp, &u, Default::default()).is_err());
}

#[test]
fn ghicoo_fibers_require_the_ttv_layout() {
    let x = sample();
    let all = GHicooTensor::from_coo(&x, 3, &[true, true, true]).unwrap();
    assert!(all.fibers(0).is_err());
    let two_open = GHicooTensor::from_coo(&x, 3, &[false, false, true]).unwrap();
    assert!(two_open.fibers(0).is_err());
}

#[test]
fn io_failures_are_parse_errors_not_panics() {
    // Garbage text.
    let r: std::result::Result<CooTensor<f32>, IoError> = tns::read_tns(&b"not a tensor"[..]);
    assert!(matches!(r, Err(IoError::Parse(_))));
    // Mixed arity.
    let r: std::result::Result<CooTensor<f32>, IoError> =
        tns::read_tns(&b"1 1 1 2.0\n1 1 2.0\n"[..]);
    assert!(matches!(r, Err(IoError::Parse(_))));
    // Truncated binary at every interesting boundary.
    let mut blob = Vec::new();
    bin::write_bin(&sample(), &mut blob).unwrap();
    for cut in [0usize, 4, 5, 6, 10, 20, blob.len() - 1] {
        let r: std::result::Result<CooTensor<f32>, IoError> = bin::read_bin(&blob[..cut]);
        assert!(r.is_err(), "cut {cut}");
    }
    // Binary with corrupted dimension (zero).
    let mut bad = blob.clone();
    bad[6] = 0;
    bad[7] = 0;
    bad[8] = 0;
    bad[9] = 0;
    let r: std::result::Result<CooTensor<f32>, IoError> = bin::read_bin(bad.as_slice());
    assert!(r.is_err());
}

#[test]
fn errors_format_without_panicking() {
    // Exercise the Display impl of every error variant reachable here.
    let errors: Vec<TensorError> = vec![
        TensorError::ShapeMismatch {
            left: vec![1],
            right: vec![2],
        },
        TensorError::OrderMismatch { left: 2, right: 3 },
        TensorError::ModeOutOfRange { mode: 9, order: 3 },
        TensorError::IndexOutOfBounds {
            mode: 0,
            index: 5,
            dim: 4,
        },
        TensorError::OperandLengthMismatch {
            expected: 4,
            actual: 5,
        },
        TensorError::PatternMismatch,
        TensorError::OrderTooSmall { min: 2, actual: 1 },
        TensorError::InvalidBlockBits(0),
        TensorError::InvalidCompressionPlan { flags: 1, order: 3 },
        TensorError::InvalidStructure("x".into()),
        TensorError::FactorMismatch("y".into()),
        TensorError::DivisionByZero,
        TensorError::SizeOverflow,
    ];
    for e in errors {
        assert!(!e.to_string().is_empty());
    }
}
