//! Streaming analytics, FireHose-style: consume an edge-packet stream,
//! stack windows into the slices of a third-order tensor, and use the
//! benchmark kernels to answer stream questions (hot edges, per-window
//! volume) — the anomaly-detection workload family the paper cites for
//! tensors like `enron4d`.
//!
//! ```text
//! cargo run --release --example streaming_slices
//! ```

use tenbench::core::dense::DenseVector;
use tenbench::core::hicoo::HicooTensor;
use tenbench::core::kernels::ttv;
use tenbench::gen::stream::{stack_slices, EdgeStream};

fn main() {
    const DIM: u32 = 65_536;
    const WINDOWS: usize = 12;
    const PACKETS_PER_WINDOW: usize = 25_000;

    let mut stream = EdgeStream::new(DIM, DIM, 1.6, 2026);
    let x = stack_slices(&mut stream, DIM, DIM, PACKETS_PER_WINDOW, WINDOWS);
    println!(
        "stacked {} packets into {}: {} distinct (edge, window) entries",
        WINDOWS * PACKETS_PER_WINDOW,
        x.shape(),
        x.nnz()
    );

    // Per-window packet volume: contract the edge modes with ones.
    let ones_src = DenseVector::constant(DIM as usize, 1.0f32);
    let by_dst_window = ttv::ttv(&x, &ones_src, 0).expect("sum over src");
    let ones_dst = DenseVector::constant(DIM as usize, 1.0f32);
    let by_window = ttv::ttv(&by_dst_window, &ones_dst, 0).expect("sum over dst");
    println!("\npackets per window:");
    for (coord, v) in by_window.iter_entries() {
        println!("  window {:>2}: {:>7}", coord[0], v);
    }

    // Aggregate over windows (contract the slice mode) and report the
    // hottest edges of the whole stream.
    let ones_w = DenseVector::constant(WINDOWS, 1.0f32);
    let totals = ttv::ttv(&x, &ones_w, 2).expect("sum over windows");
    let mut hot: Vec<(Vec<u32>, f32)> = totals.iter_entries().collect();
    hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nhottest edges across the stream:");
    for (coord, count) in hot.iter().take(5) {
        println!("  ({:>5}, {:>5}): {} packets", coord[0], coord[1], count);
    }

    // The stream tensor is block-friendly: HiCOO compresses it.
    let h = HicooTensor::from_coo(&x, 7).expect("hicoo");
    println!(
        "\nstorage: COO {} bytes vs HiCOO {} bytes ({:.2}x), {} blocks",
        x.storage_bytes(),
        h.storage_bytes(),
        h.storage_bytes() as f64 / x.storage_bytes() as f64,
        h.num_blocks()
    );
}
