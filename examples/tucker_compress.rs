//! Tucker-style compression via a TTM-chain — the Ttm-bound application
//! from §2.4 ("Ttm ... is more commonly used in tensor decompositions, such
//! as the Tucker decomposition").
//!
//! Compresses a recommendation-system-style tensor (`r8` "deli" surrogate)
//! into a small core by multiplying every mode with a random orthogonal-ish
//! factor, then reports the compression ratio.
//!
//! ```text
//! cargo run --release --example tucker_compress
//! ```

use tenbench::core::methods::ttm_chain;
use tenbench::gen::registry::find;
use tenbench::prelude::*;

fn main() {
    // crime4d: compact mode sizes, so the factor matrices stay small and
    // Tucker compression genuinely pays off.
    let dataset = find("r10").expect("registry has r10");
    let x = dataset.generate_with(40_000, 11);
    println!(
        "Surrogate '{}' tensor: {} with {} nonzeros ({} bytes in COO)",
        dataset.name,
        x.shape(),
        x.nnz(),
        x.storage_bytes()
    );

    // Rank-(4,4,4) compression: one I_n x 4 factor per mode. A fixed
    // pseudo-random pattern stands in for the HOSVD factors a real Tucker
    // pipeline would compute.
    let ranks: Vec<usize> = vec![4; x.order()];
    let factors: Vec<DenseMatrix<f32>> = (0..x.order())
        .map(|m| {
            let rows = x.shape().dim(m) as usize;
            DenseMatrix::from_fn(rows, ranks[m], |i, j| {
                let h = (i.wrapping_mul(2654435761).wrapping_add(j * 97)) % 1000;
                // Non-negative sketching factors keep the core energy
                // interpretable (signed random factors cancel).
                (h as f32 / 1000.0) / (rows as f32).sqrt()
            })
        })
        .collect();

    let chain: Vec<(usize, &DenseMatrix<f32>)> = factors.iter().enumerate().collect();
    let core = ttm_chain(&x, &chain).expect("ttm chain");
    println!("core: {} with {} stored values", core.shape(), core.nnz());

    let dense_core_bytes = 4 * ranks.iter().product::<usize>() as u64;
    let factor_bytes: u64 = factors.iter().map(|f| f.storage_bytes()).sum();
    println!(
        "Tucker storage: {} bytes (core) + {} bytes (factors) = {} vs {} bytes raw COO ({:.1}x)",
        dense_core_bytes,
        factor_bytes,
        dense_core_bytes + factor_bytes,
        x.storage_bytes(),
        x.storage_bytes() as f64 / (dense_core_bytes + factor_bytes) as f64
    );

    // Energy captured by the core (a crude fidelity proxy).
    let x_norm: f64 = x.vals().iter().map(|&v| (v as f64).powi(2)).sum();
    let core_norm: f64 = core.vals().iter().map(|&v| (v as f64).powi(2)).sum();
    println!("||core||^2 / ||X||^2 = {:.3e}", core_norm / x_norm);
}
