//! A tour of every sparse format in the suite on one tensor, including
//! storage comparisons and `.tns` / binary round-trips.
//!
//! ```text
//! cargo run --release --example format_tour
//! ```

use tenbench::core::csf::CsfTensor;
use tenbench::core::hicoo::{GHicooTensor, HicooTensor};
use tenbench::gen::registry::find;
use tenbench::gen::TensorStats;
use tenbench::io::{bin, tns};

fn main() {
    let dataset = find("s13").expect("registry has s13");
    let x = dataset.generate_with(30_000, 9);
    println!(
        "'{}' {} tensor, {} nonzeros, density {:.2e}\n",
        dataset.name,
        x.shape(),
        x.nnz(),
        x.density()
    );

    let stats = TensorStats::compute(&x, 7);
    println!("fibers per mode:    {:?}", stats.fibers_per_mode);
    println!("longest fiber/mode: {:?}", stats.max_fiber_len_per_mode);
    println!(
        "HiCOO blocks: {} (mean {:.2} nnz/block, max {})\n",
        stats.hicoo_blocks, stats.mean_nnz_per_block, stats.max_nnz_per_block
    );

    println!("storage comparison:");
    println!("  COO    : {:>9} bytes", x.storage_bytes());
    let h = HicooTensor::from_coo(&x, 7).expect("hicoo");
    println!(
        "  HiCOO  : {:>9} bytes ({:.2}x COO)",
        h.storage_bytes(),
        h.storage_bytes() as f64 / x.storage_bytes() as f64
    );
    let g = GHicooTensor::from_coo_for_mode(&x, 7, x.order() - 1).expect("ghicoo");
    println!(
        "  gHiCOO : {:>9} bytes (product mode uncompressed)",
        g.storage_bytes()
    );
    let c = CsfTensor::from_coo(&x, None).expect("csf");
    println!("  CSF    : {:>9} bytes", c.storage_bytes());

    // Round-trips through both I/O formats.
    let mut text = Vec::new();
    tns::write_tns(&x, &mut text).expect("write .tns");
    let back: tenbench::core::coo::CooTensor<f32> =
        tns::read_tns_with_shape(text.as_slice(), x.shape().clone()).expect("read .tns");
    assert_eq!(back.to_map(), x.to_map());
    println!("\n.tns round-trip ok ({} bytes of text)", text.len());

    let mut blob = Vec::new();
    bin::write_bin(&x, &mut blob).expect("write binary");
    let back2: tenbench::core::coo::CooTensor<f32> =
        bin::read_bin(blob.as_slice()).expect("read binary");
    assert_eq!(back2.to_map(), x.to_map());
    println!(
        "binary round-trip ok ({} bytes, {:.1}x smaller than text)",
        blob.len(),
        text.len() as f64 / blob.len() as f64
    );

    // Every format agrees on the data.
    assert_eq!(h.to_map(), x.to_map());
    assert_eq!(g.to_map(), x.to_map());
    assert_eq!(c.to_map(), x.to_map());
    println!("\nall formats agree on {} entries", x.nnz());
}
