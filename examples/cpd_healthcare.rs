//! CP decomposition of a healthcare-analytics-style tensor.
//!
//! The paper motivates Mttkrp as the bottleneck of CANDECOMP/PARAFAC, with
//! healthcare analytics (the CHOA patient x diagnosis x time tensor) among
//! its applications. This example decomposes the `r3` ("choa") surrogate
//! and reports fit and per-iteration Mttkrp throughput.
//!
//! ```text
//! cargo run --release --example cpd_healthcare
//! ```

use std::time::Instant;

use tenbench::core::kernels::mttkrp::MttkrpStrategy;
use tenbench::core::kernels::Kernel;
use tenbench::core::methods::{cp_als, CpAlsOptions};
use tenbench::gen::registry::find;

fn main() {
    let dataset = find("r3").expect("registry has r3");
    let x = dataset.generate_with(60_000, 42);
    println!(
        "Surrogate '{}' tensor: {} (order {}), {} nonzeros",
        dataset.name,
        x.shape(),
        x.order(),
        x.nnz()
    );

    for rank in [4usize, 8, 16] {
        let opts = CpAlsOptions {
            rank,
            max_iters: 20,
            tol: 1e-4,
            seed: 7,
            strategy: MttkrpStrategy::Atomic,
            backend: Default::default(),
        };
        let t0 = Instant::now();
        let d = cp_als(&x, &opts).expect("cp-als");
        let dt = t0.elapsed().as_secs_f64();
        // Each sweep runs one Mttkrp per mode.
        let mttkrps = d.iterations * x.order();
        let flops = Kernel::Mttkrp.flops(x.order(), x.nnz() as u64, rank as u64) * mttkrps as u64;
        println!(
            "rank {rank:>2}: fit {:.4} after {} sweeps in {:.2}s (~{:.2} GFLOPS of Mttkrp work)",
            d.fit,
            d.iterations,
            dt,
            flops as f64 / dt / 1e9
        );
        // Show the dominant component's weight.
        let mut lambda: Vec<f64> = d.lambda.iter().map(|&l| l as f64).collect();
        lambda.sort_by(|a, b| b.partial_cmp(a).unwrap());
        println!(
            "         top component weights: {:?}",
            &lambda[..rank.min(4)]
        );
    }
}
