//! Quickstart: build a sparse tensor, convert it between formats, and run
//! all five benchmark kernels.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tenbench::core::hicoo::HicooTensor;
use tenbench::core::kernels::{mttkrp, tew, ts, ttm, ttv, EwOp};
use tenbench::prelude::*;

fn main() {
    // A small third-order tensor from explicit entries. Entries are
    // validated, sorted, and duplicate coordinates are summed.
    let x = CooTensor::<f32>::from_entries(
        Shape::new(vec![8, 8, 8]),
        vec![
            (vec![0, 0, 0], 1.0),
            (vec![0, 1, 2], 2.0),
            (vec![1, 1, 1], 3.0),
            (vec![2, 5, 7], 4.0),
            (vec![3, 3, 3], 5.0),
            (vec![5, 0, 2], 6.0),
            (vec![7, 7, 7], 7.0),
        ],
    )
    .expect("valid entries");
    println!(
        "X: {} tensor, {} nonzeros, density {:.2e}",
        x.shape(),
        x.nnz(),
        x.density()
    );

    // HiCOO: the same tensor in 2^2 = 4-wide blocks.
    let h = HicooTensor::from_coo(&x, 2).expect("valid block bits");
    println!(
        "HiCOO: {} blocks, {} bytes (COO: {} bytes)",
        h.num_blocks(),
        h.storage_bytes(),
        x.storage_bytes()
    );

    // Tew: element-wise multiply with a same-pattern partner.
    let y = ts::ts(&x, 2.0, EwOp::Mul).expect("scalar multiply");
    let z = tew::tew(&x, &y, EwOp::Add).expect("element-wise add");
    println!(
        "Tew: X + 2X has {} nonzeros; first value {}",
        z.nnz(),
        z.vals()[0]
    );

    // Ttv: contract mode 2 with a vector.
    let v = DenseVector::from_fn(8, |i| (i + 1) as f32);
    let xv = ttv::ttv(&x, &v, 2).expect("ttv");
    println!("Ttv: output order {}, {} nonzeros", xv.order(), xv.nnz());

    // Ttm: multiply mode 1 by an 8x4 factor; the output is semi-sparse.
    let u = DenseMatrix::from_fn(8, 4, |i, j| (i * 4 + j) as f32 * 0.1);
    let xu = ttm::ttm(&x, &u, 1).expect("ttm");
    println!(
        "Ttm: output dense in mode {}, {} fibers x {} columns",
        xu.dense_mode(),
        xu.num_fibers(),
        xu.dense_size()
    );

    // Mttkrp: the CP-decomposition workhorse.
    let factors: Vec<DenseMatrix<f32>> = (0..3).map(|_| DenseMatrix::constant(8, 4, 0.5)).collect();
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    let mk = mttkrp::mttkrp(&x, &frefs, 0).expect("mttkrp");
    println!(
        "Mttkrp: output {}x{}, row 0 = {:?}",
        mk.rows(),
        mk.cols(),
        mk.row(0)
    );

    // The same kernels over HiCOO agree with COO.
    let mk_h = mttkrp::mttkrp_hicoo(&h, &frefs, 0).expect("hicoo mttkrp");
    let max_diff = mk
        .data()
        .iter()
        .zip(mk_h.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("HiCOO agreement: max |COO - HiCOO| = {max_diff:.2e}");
}
