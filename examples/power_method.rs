//! The tensor power method — the Ttv-bound application from §2.3 of the
//! paper ("Ttv is a critical computational kernel of the tensor power
//! method, an approach for orthogonal tensor decomposition").
//!
//! Builds a symmetric tensor with two planted orthogonal components,
//! recovers the dominant one, deflates, and recovers the second.
//!
//! ```text
//! cargo run --release --example power_method
//! ```

use tenbench::core::kernels::{tew, ts, EwOp};
use tenbench::core::methods::tensor_power_method;
use tenbench::prelude::*;

/// Build the symmetric rank-1 tensor lambda * u ∘ u ∘ u in COO form.
fn rank_one(lambda: f64, u: &[f64]) -> CooTensor<f64> {
    let n = u.len();
    let mut entries = Vec::new();
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let v = lambda * u[i] * u[j] * u[k];
                if v.abs() > 1e-12 {
                    entries.push((vec![i as u32, j as u32, k as u32], v));
                }
            }
        }
    }
    CooTensor::from_entries(Shape::cubical(3, n as u32), entries).expect("valid")
}

fn main() {
    // Two orthogonal unit vectors in R^6.
    let u1 = [0.6, 0.8, 0.0, 0.0, 0.0, 0.0];
    let u2 = [0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
    let t1 = rank_one(5.0, &u1);
    let t2 = rank_one(2.0, &u2);
    let x = tew::tew(&t1, &t2, EwOp::Add).expect("combine components");
    println!(
        "X = 5 u1^3 + 2 u2^3 over {}: {} nonzeros",
        x.shape(),
        x.nnz()
    );

    // First eigen-pair.
    let r1 = tensor_power_method(&x, 200, 1e-12, 3).expect("power method");
    println!(
        "dominant: lambda = {:.4} (expect 5), converged = {}, {} iterations",
        r1.eigenvalue, r1.converged, r1.iterations
    );
    let alignment: f64 = r1
        .eigenvector
        .as_slice()
        .iter()
        .zip(&u1)
        .map(|(a, b)| a * b)
        .sum();
    println!("          |<v, u1>| = {:.6}", alignment.abs());

    // Deflate: X - lambda v^3, then the second component dominates.
    let v: Vec<f64> = r1.eigenvector.as_slice().to_vec();
    let deflation = rank_one(r1.eigenvalue, &v);
    let negated = ts::ts(&deflation, -1.0, EwOp::Mul).expect("negate");
    let rest = tew::tew(&x, &negated, EwOp::Add).expect("deflate");
    let r2 = tensor_power_method(&rest, 200, 1e-12, 5).expect("second run");
    println!(
        "deflated: lambda = {:.4} (expect 2), converged = {}",
        r2.eigenvalue, r2.converged
    );
    let alignment2: f64 = r2
        .eigenvector
        .as_slice()
        .iter()
        .zip(&u2)
        .map(|(a, b)| a * b)
        .sum();
    println!("          |<v, u2>| = {:.6}", alignment2.abs());
}
