//! Side-by-side simulated GPU runs: the five kernels on a P100 vs a V100,
//! reproducing the Figure 6 vs Figure 7 comparison, with the simulator's
//! bottleneck diagnosis per kernel.
//!
//! ```text
//! cargo run --release --example gpu_comparison
//! ```

use tenbench::core::dense::{DenseMatrix, DenseVector};
use tenbench::core::hicoo::HicooTensor;
use tenbench::core::kernels::EwOp;
use tenbench::gen::registry::find;
use tenbench::gpusim::device::DeviceSpec;
use tenbench::gpusim::kernels as gpuk;
use tenbench::gpusim::GpuKernelStats;

fn describe(s: &GpuKernelStats) -> String {
    format!(
        "{:>7.1} GFLOPS  ({:>5.1} us, bottleneck {:>6}, L2 hit {:>4.0}%, {} atomics)",
        s.gflops(),
        s.time_s * 1e6,
        s.bottleneck(),
        s.l2_hit_rate() * 100.0,
        s.atomics
    )
}

fn main() {
    let dataset = find("s4").expect("registry has s4");
    let x = dataset.generate_with(80_000, 21);
    println!(
        "'{}' tensor {} with {} nonzeros\n",
        dataset.name,
        x.shape(),
        x.nnz()
    );
    let y = {
        let mut y = x.clone();
        y.vals_mut().iter_mut().for_each(|v| *v *= 2.0);
        y
    };
    let h = HicooTensor::from_coo(&x, 7).expect("hicoo");
    let hy = HicooTensor::from_coo(&y, 7).expect("hicoo");
    let v = DenseVector::constant(x.shape().dim(2) as usize, 1.0f32);
    let factors: Vec<DenseMatrix<f32>> = (0..3)
        .map(|m| {
            DenseMatrix::from_fn(x.shape().dim(m) as usize, 16, |i, j| {
                ((i + j) % 17) as f32 * 0.1
            })
        })
        .collect();
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();

    for dev in [DeviceSpec::p100(), DeviceSpec::v100()] {
        println!("== {} ==", dev.name);
        let (_, s) = gpuk::tew_coo_gpu(&dev, &x, &y, EwOp::Add).unwrap();
        println!("  Tew    COO   {}", describe(&s));
        let (_, s) = gpuk::ts_coo_gpu(&dev, &x, 1.5, EwOp::Mul).unwrap();
        println!("  Ts     COO   {}", describe(&s));
        let (_, s) = gpuk::ttv_coo_gpu(&dev, &x, &v, 2).unwrap();
        println!("  Ttv    COO   {}", describe(&s));
        let (_, s) = gpuk::ttm_coo_gpu(&dev, &x, &factors[2], 2).unwrap();
        println!("  Ttm    COO   {}", describe(&s));
        let (_, s) = gpuk::mttkrp_coo_gpu(&dev, &x, &frefs, 0).unwrap();
        println!("  Mttkrp COO   {}", describe(&s));
        let (_, s) = gpuk::mttkrp_hicoo_gpu(&dev, &h, &frefs, 0).unwrap();
        println!("  Mttkrp HiCOO {}", describe(&s));
        let (_, s) = gpuk::tew_hicoo_gpu(&dev, &h, &hy, EwOp::Add).unwrap();
        println!("  Tew    HiCOO {}", describe(&s));
        println!();
    }
    println!("Note: HiCOO-Mttkrp's block-per-thread-block mapping loses the");
    println!("nonzero balance of COO-Mttkrp — the paper's §3.4.2 observation.");
}
