//! # tenbench
//!
//! Umbrella crate for the `tenbench` suite — a Rust reproduction of
//! *"A Parallel Sparse Tensor Benchmark Suite on CPUs and GPUs"*
//! (Li et al., 2020). Re-exports every sub-crate under one roof so examples
//! and downstream users need a single dependency.
//!
//! * [`core`] — sparse tensor formats (COO/sCOO/HiCOO/gHiCOO/sHiCOO/CSF) and
//!   the five parallel kernels (Tew, Ts, Ttv, Ttm, Mttkrp).
//! * [`gen`] — synthetic tensor generators (stochastic Kronecker, biased
//!   power law) and the Tables 2–3 dataset registry.
//! * [`gpusim`] — the trace-driven SIMT GPU simulator and GPU kernels.
//! * [`roofline`] — empirical Roofline measurement, platform models, and
//!   per-kernel performance bounds.
//! * [`io`] — FROSTT `.tns` and binary tensor I/O.

#![warn(missing_docs)]

pub use tenbench_core as core;
pub use tenbench_gen as gen;
pub use tenbench_gpusim as gpusim;
pub use tenbench_io as io;
pub use tenbench_roofline as roofline;

/// Convenient re-exports of the most commonly used items across the suite.
pub mod prelude {
    pub use tenbench_core::prelude::*;
    pub use tenbench_gen::{Dataset, KroneckerGenerator, PowerLawGenerator, TensorStats};
}
